// Package dataset provides the evaluation data substrate: a deterministic
// synthetic generator of SIFT-like descriptor vectors standing in for the
// ANN_SIFT1B corpus the paper uses (see DESIGN.md, "Substitutions"), plus
// exact ground-truth computation for recall checks.
//
// The generator produces 128-dimensional vectors from a clustered Gaussian
// mixture with per-cluster anisotropic spread, clamped to the non-negative
// integer-valued range of real SIFT descriptors. Clustered structure is
// what matters for reproducing the paper's behaviour: it yields
// non-uniform IVF partition sizes (its Table 3) and realistic distance
// distributions for the quantization bounds of §4.4.
package dataset

import (
	"fmt"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/vec"
)

// SIFTDim is the dimensionality of SIFT descriptors used throughout the
// paper's evaluation ("Vectors of this dataset are SIFT descriptors of
// dimensionality 128", §5.1).
const SIFTDim = 128

// SIFTMax is the maximum component value of a SIFT descriptor.
const SIFTMax = 255

// Config parameterizes the synthetic generator.
type Config struct {
	Dim      int    // vector dimensionality (default SIFTDim)
	Clusters int    // number of mixture components (default 64)
	Seed     uint64 // master seed; all outputs are deterministic in it
	// ClusterSpreadMin/Max bound the per-cluster standard deviation,
	// drawn uniformly per cluster and scaled per dimension.
	ClusterSpreadMin float64
	ClusterSpreadMax float64
	// SubspaceMixing controls how strongly the 16-dimension sub-spaces
	// (the PQ sub-quantizer views) of one vector share cluster
	// membership. 1 means fully coherent clusters (every sub-space drawn
	// from the same mixture component); 0 means every sub-space picks its
	// component independently. Real SIFT descriptors sit in between:
	// gradient-orientation histogram blocks are only partially
	// correlated, and after IVF residualization the per-sub-quantizer
	// views decorrelate further. Default 0.5.
	SubspaceMixing float64
	// subspaceMixingSet records an explicit zero value.
	SubspaceMixingSet bool
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = SIFTDim
	}
	if c.Clusters == 0 {
		c.Clusters = 64
	}
	if c.ClusterSpreadMin == 0 {
		c.ClusterSpreadMin = 4
	}
	if c.ClusterSpreadMax == 0 {
		c.ClusterSpreadMax = 24
	}
	if c.SubspaceMixing == 0 && !c.SubspaceMixingSet {
		c.SubspaceMixing = 0.5
	}
	return c
}

// Generator synthesizes SIFT-like vectors from a fixed Gaussian mixture.
// Distinct Generate calls continue the same deterministic stream.
type Generator struct {
	cfg     Config
	means   vec.Matrix
	spreads []float32 // per cluster x dim standard deviations
	weights []float64 // cumulative cluster sampling weights
	src     *rng.Source
}

// NewGenerator builds the mixture for cfg.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	src := rng.New(cfg.Seed)
	mixSrc := src.Split()
	g := &Generator{
		cfg:     cfg,
		means:   vec.NewMatrix(cfg.Clusters, cfg.Dim),
		spreads: make([]float32, cfg.Clusters*cfg.Dim),
		weights: make([]float64, cfg.Clusters),
		src:     src,
	}
	total := 0.0
	for c := 0; c < cfg.Clusters; c++ {
		mean := g.means.Row(c)
		base := cfg.ClusterSpreadMin +
			mixSrc.Float64()*(cfg.ClusterSpreadMax-cfg.ClusterSpreadMin)
		for d := 0; d < cfg.Dim; d++ {
			// SIFT components are gradient-histogram bins: mostly small
			// values with occasional large peaks. A squared uniform gives
			// that skew.
			u := mixSrc.Float64()
			mean[d] = float32(u * u * SIFTMax)
			g.spreads[c*cfg.Dim+d] = float32(base * (0.5 + mixSrc.Float64()))
		}
		// Zipf-ish cluster popularity so partitions end up non-uniform.
		w := 1.0 / float64(c+1)
		total += w
		g.weights[c] = total
	}
	return g
}

// Generate appends n fresh vectors and returns them as a matrix.
func (g *Generator) Generate(n int) vec.Matrix {
	out := vec.NewMatrix(n, g.cfg.Dim)
	for i := 0; i < n; i++ {
		g.fill(out.Row(i))
	}
	return out
}

// subspaceDim is the granularity at which cluster membership may switch
// within one vector: the PQ 8x8 sub-vector width for 128-dim data.
const subspaceDim = 16

func (g *Generator) fill(dst []float32) {
	c := g.pickCluster()
	mean := g.means.Row(c)
	spread := g.spreads[c*g.cfg.Dim : (c+1)*g.cfg.Dim]
	for d := range dst {
		// At each sub-space boundary, possibly re-draw the mixture
		// component: SubspaceMixing is the probability of keeping the
		// vector's global component for this block.
		if d%subspaceDim == 0 && d > 0 && g.src.Float64() >= g.cfg.SubspaceMixing {
			alt := g.pickCluster()
			mean = g.means.Row(alt)
			spread = g.spreads[alt*g.cfg.Dim : (alt+1)*g.cfg.Dim]
		}
		v := float64(mean[d]) + g.src.NormFloat64()*float64(spread[d])
		if v < 0 {
			v = 0
		}
		if v > SIFTMax {
			v = SIFTMax
		}
		// Real SIFT descriptors are integer-valued (stored as bytes).
		dst[d] = float32(int(v))
	}
}

func (g *Generator) pickCluster() int {
	total := g.weights[len(g.weights)-1]
	target := g.src.Float64() * total
	lo, hi := 0, len(g.weights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.weights[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// GroundTruth returns, for each query row, the ids of the k exact nearest
// base rows under squared L2 distance, sorted by ascending distance.
func GroundTruth(base, queries vec.Matrix, k int) ([][]int64, error) {
	if base.Dim != queries.Dim {
		return nil, fmt.Errorf("dataset: dimensionality mismatch %d vs %d", base.Dim, queries.Dim)
	}
	n := base.Rows()
	if k > n {
		return nil, fmt.Errorf("dataset: k=%d exceeds base size %d", k, n)
	}
	out := make([][]int64, queries.Rows())
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		type cand struct {
			id int64
			d  float32
		}
		best := make([]cand, 0, k+1)
		for i := 0; i < n; i++ {
			d := vec.L2Squared(q, base.Row(i))
			if len(best) == k && d >= best[k-1].d {
				continue
			}
			// Insertion sort into the short candidate list.
			pos := len(best)
			for pos > 0 && (best[pos-1].d > d || (best[pos-1].d == d && best[pos-1].id > int64(i))) {
				pos--
			}
			best = append(best, cand{})
			copy(best[pos+1:], best[pos:])
			best[pos] = cand{id: int64(i), d: d}
			if len(best) > k {
				best = best[:k]
			}
		}
		ids := make([]int64, len(best))
		for i, c := range best {
			ids[i] = c.id
		}
		out[qi] = ids
	}
	return out, nil
}

// Recall computes recall@R: the fraction of queries whose true nearest
// neighbor (groundTruth[q][0]) appears among the first R returned ids.
func Recall(results [][]int64, groundTruth [][]int64, r int) float64 {
	if len(results) == 0 {
		return 0
	}
	hits := 0
	for q, res := range results {
		truth := groundTruth[q][0]
		limit := r
		if limit > len(res) {
			limit = len(res)
		}
		for _, id := range res[:limit] {
			if id == truth {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(results))
}
