package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pqfastscan/internal/vec"
)

// This file implements the TEXMEX corpus file formats used by
// ANN_SIFT1B (http://corpus-texmex.irisa.fr/, §5.1 of the paper):
//
//	.fvecs — each vector is a little-endian int32 dimension d followed by
//	         d float32 components;
//	.bvecs — int32 dimension followed by d uint8 components (SIFT bytes);
//	.ivecs — int32 dimension followed by d int32 entries (ground truth).
//
// Implementing the real formats keeps the CLI tools drop-in compatible
// with the public corpus should it be available.

// WriteFvecs writes every row of m to w in .fvecs format.
func WriteFvecs(w io.Writer, m vec.Matrix) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 4+4*m.Dim)
	binary.LittleEndian.PutUint32(buf, uint32(m.Dim))
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for d, v := range row {
			binary.LittleEndian.PutUint32(buf[4+4*d:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: writing fvecs: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFvecs reads all vectors from r. maxVectors <= 0 reads to EOF.
func ReadFvecs(r io.Reader, maxVectors int) (vec.Matrix, error) {
	br := bufio.NewReader(r)
	var data []float32
	dim := 0
	var head [4]byte
	for n := 0; maxVectors <= 0 || n < maxVectors; n++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			return vec.Matrix{}, fmt.Errorf("dataset: reading fvecs header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(head[:])))
		if d <= 0 || d > 1<<20 {
			return vec.Matrix{}, fmt.Errorf("dataset: implausible fvecs dimension %d", d)
		}
		if dim == 0 {
			dim = d
		} else if d != dim {
			return vec.Matrix{}, fmt.Errorf("dataset: inconsistent fvecs dimensions %d and %d", dim, d)
		}
		body := make([]byte, 4*d)
		if _, err := io.ReadFull(br, body); err != nil {
			return vec.Matrix{}, fmt.Errorf("dataset: reading fvecs body: %w", err)
		}
		for i := 0; i < d; i++ {
			data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
		}
	}
	return vec.Matrix{Data: data, Dim: dim}, nil
}

// WriteBvecs writes every row of m to w in .bvecs format, rounding
// components to the nearest byte (SIFT descriptors are byte-valued).
func WriteBvecs(w io.Writer, m vec.Matrix) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 4+m.Dim)
	binary.LittleEndian.PutUint32(buf, uint32(m.Dim))
	for i := 0; i < m.Rows(); i++ {
		for d, v := range m.Row(i) {
			x := int(v + 0.5)
			if x < 0 {
				x = 0
			}
			if x > 255 {
				x = 255
			}
			buf[4+d] = uint8(x)
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: writing bvecs: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBvecs reads byte vectors from r into a float32 matrix.
// maxVectors <= 0 reads to EOF.
func ReadBvecs(r io.Reader, maxVectors int) (vec.Matrix, error) {
	br := bufio.NewReader(r)
	var data []float32
	dim := 0
	var head [4]byte
	for n := 0; maxVectors <= 0 || n < maxVectors; n++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			return vec.Matrix{}, fmt.Errorf("dataset: reading bvecs header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(head[:])))
		if d <= 0 || d > 1<<20 {
			return vec.Matrix{}, fmt.Errorf("dataset: implausible bvecs dimension %d", d)
		}
		if dim == 0 {
			dim = d
		} else if d != dim {
			return vec.Matrix{}, fmt.Errorf("dataset: inconsistent bvecs dimensions %d and %d", dim, d)
		}
		body := make([]byte, d)
		if _, err := io.ReadFull(br, body); err != nil {
			return vec.Matrix{}, fmt.Errorf("dataset: reading bvecs body: %w", err)
		}
		for _, b := range body {
			data = append(data, float32(b))
		}
	}
	return vec.Matrix{Data: data, Dim: dim}, nil
}

// WriteIvecs writes integer id lists (e.g. ground truth) in .ivecs format.
func WriteIvecs(w io.Writer, rows [][]int64) error {
	bw := bufio.NewWriter(w)
	for _, row := range rows {
		var head [4]byte
		binary.LittleEndian.PutUint32(head[:], uint32(len(row)))
		if _, err := bw.Write(head[:]); err != nil {
			return fmt.Errorf("dataset: writing ivecs: %w", err)
		}
		var cell [4]byte
		for _, v := range row {
			binary.LittleEndian.PutUint32(cell[:], uint32(int32(v)))
			if _, err := bw.Write(cell[:]); err != nil {
				return fmt.Errorf("dataset: writing ivecs: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadIvecs reads integer id lists from r. maxRows <= 0 reads to EOF.
func ReadIvecs(r io.Reader, maxRows int) ([][]int64, error) {
	br := bufio.NewReader(r)
	var out [][]int64
	var head [4]byte
	for n := 0; maxRows <= 0 || n < maxRows; n++ {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: reading ivecs header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(head[:])))
		if d < 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible ivecs length %d", d)
		}
		body := make([]byte, 4*d)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("dataset: reading ivecs body: %w", err)
		}
		row := make([]int64, d)
		for i := range row {
			row[i] = int64(int32(binary.LittleEndian.Uint32(body[4*i:])))
		}
		out = append(out, row)
	}
	return out, nil
}
