// Package fsio is the filesystem seam under the durability layer.
//
// persist and wal perform every write-path filesystem operation through
// the FS interface instead of calling the os package directly, so the
// crash/fault-injection harness (internal/crashtest) can interpose a
// failing filesystem — short writes, an error on the Nth write, fsync
// failures — and prove that torn or failed I/O is detected and surfaced
// rather than silently acknowledged. Production code uses OS, a direct
// passthrough to the os package with zero indirection cost beyond an
// interface call per syscall-bound operation.
package fsio

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File is the writable-file surface the durability layer needs. Sync
// must not return until the data is on stable storage (fsync).
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the directory-level surface: creating, renaming and removing
// files, fsyncing directories, and enumerating log segments.
type FS interface {
	// CreateTemp creates a new temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if
	// absent.
	OpenAppend(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (fs.File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs the directory itself, making renames and removals
	// within it durable.
	SyncDir(dir string) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(dir string, perm fs.FileMode) error
	// Truncate truncates the named (closed) file to size.
	Truncate(name string, size int64) error
}

// OS is the production FS: a passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (fs.File, error) { return os.Open(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SweepTemp removes orphaned files in dir whose base name starts with
// any of the given prefixes — the leftovers of a crash between "write
// temp file" and "rename into place" in the atomic-replace protocol
// (persist snapshots, extent writes). It returns the paths removed.
//
// SweepTemp must only run at startup, before any writer is active in
// dir: a live writer's in-flight temp file is indistinguishable from an
// orphan. A missing dir is not an error (nothing to sweep).
func SweepTemp(fsys FS, dir string, prefixes ...string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(name, p) {
				path := filepath.Join(dir, name)
				if err := fsys.Remove(path); err != nil {
					return removed, err
				}
				removed = append(removed, path)
				break
			}
		}
	}
	if len(removed) > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
