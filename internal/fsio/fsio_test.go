package fsio

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestSweepTemp covers the startup-hygiene sweep: orphaned temp files
// matching a prefix are removed, everything else survives, and a
// missing directory is a no-op rather than an error.
func TestSweepTemp(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	orphan1 := mk(".pqfsidx-123456")
	orphan2 := mk(".pqfsext-torn")
	keepIdx := mk("snapshot.idx")
	keepExt := mk("i1-p0-e3.extent")
	if err := os.Mkdir(filepath.Join(dir, ".pqfsidx-dirlike"), 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepTemp(OS, dir, ".pqfsidx-", ".pqfsext-")
	if err != nil {
		t.Fatalf("SweepTemp: %v", err)
	}
	sort.Strings(removed)
	want := []string{orphan1, orphan2}
	sort.Strings(want)
	if len(removed) != len(want) {
		t.Fatalf("removed %v, want %v", removed, want)
	}
	for i := range want {
		if removed[i] != want[i] {
			t.Fatalf("removed %v, want %v", removed, want)
		}
	}
	for _, path := range []string{keepIdx, keepExt} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("non-orphan %s was removed: %v", path, err)
		}
	}
	for _, path := range want {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the sweep (err=%v)", path, err)
		}
	}
	// Directories matching the prefix are never touched.
	if _, err := os.Stat(filepath.Join(dir, ".pqfsidx-dirlike")); err != nil {
		t.Errorf("directory swept: %v", err)
	}

	// Missing directory: nothing to sweep, no error.
	removed, err = SweepTemp(OS, filepath.Join(dir, "nope"), ".pqfsidx-")
	if err != nil || removed != nil {
		t.Fatalf("missing dir: removed=%v err=%v, want nil/nil", removed, err)
	}
}
