// Package persist serializes trained indexes so the expensive
// construction pipeline (coarse quantizer, product quantizer, residual
// encoding, optimized assignment) runs once and queries can start
// immediately on reload — the operational mode the paper assumes
// ("database vectors are stored as pqcodes", §2.1; the index is built
// offline).
//
// The format is a simple little-endian binary layout with a magic header
// and version byte. Version 1 (the original, still readable) is:
//
//	"PQFSIDX\x01"
//	u32 dim, u32 partitions
//	u32 m, u32 bits, u32 subdim
//	m codebooks: k* x subdim float32
//	coarse centroids: partitions x dim float32
//	options: f64 keep, i32 groupComponents, u8 orderGroups, u8 optimized
//	per partition: u32 n, n x m bytes codes, n x i64 ids
//
// Version 2 (written by default) extends it for mutable indexes: online
// Add appends codes into the partition blocks (so n covers build-time and
// appended vectors alike) and Delete leaves tombstones, both of which
// must survive a save/load cycle:
//
//	"PQFSIDX\x02"
//	... identical through the options block ...
//	u64 nextID (the id allocator position, so reloads never reuse ids)
//	per partition: u32 n, n x m bytes codes, n x i64 ids,
//	               u32 nDead, nDead x i64 tombstoned ids
//
// Version 3 (written by default) extends version 2 for crash-safe
// durability (DESIGN.md §14):
//
//	"PQFSIDX\x03"
//	... identical through nextID ...
//	u64 walEpoch (the WAL segment epoch this snapshot pairs with:
//	              recovery replays segments with epoch >= walEpoch)
//	... partitions as in version 2 ...
//	u32 crc32c | "PQFSEND1"
//
// In versions 1 and 2 integrity is protected by a trailing CRC-32
// (IEEE) over everything after the magic; version 3 switches to CRC-32C
// (Castagnoli, hardware-accelerated, matching the WAL) and adds an end
// magic so a truncated file is detected even if the truncation point
// happens to leave a self-consistent prefix.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"pqfastscan/internal/fsio"
	"pqfastscan/internal/index"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/scan"
	"pqfastscan/internal/vec"
)

var (
	magicPrefix = []byte("PQFSIDX")
	endMagic    = []byte("PQFSEND1")
	castagnoli  = crc32.MakeTable(crc32.Castagnoli)
)

const (
	version1 = 1 // seed format: immutable index
	version2 = 2 // adds the id allocator and per-partition tombstones
	version3 = 3 // adds the WAL epoch, CRC-32C and an end magic
)

// crcFor returns the checksum implementation of a format version.
func crcFor(version uint8) hash.Hash32 {
	if version >= version3 {
		return crc32.New(castagnoli)
	}
	return crc32.NewIEEE()
}

// maxReasonable bounds untrusted size fields while decoding.
const maxReasonable = 1 << 31

type countingWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

// WriteIndex serializes ix to w in the current format (version 3, WAL
// epoch 0 — a plain export not paired with any log).
func WriteIndex(w io.Writer, ix *index.Index) error {
	cap, err := ix.Capture()
	if err != nil {
		return err
	}
	defer cap.Release()
	return writeCapture(w, cap, version3, 0)
}

// WriteIndexV1 serializes ix in the seed's version-1 format, for
// downgrades to readers that predate mutable indexes. It refuses indexes
// carrying tombstones, which version 1 cannot represent (appended
// vectors are fine: they are ordinary codes in their partition block).
func WriteIndexV1(w io.Writer, ix *index.Index) error {
	cap, err := ix.Capture()
	if err != nil {
		return err
	}
	defer cap.Release()
	return writeCapture(w, cap, version1, 0)
}

// WriteCapture serializes a point-in-time capture in the current format,
// stamped with the WAL segment epoch it pairs with. This is the
// checkpoint write path: the durability layer captures under its
// mutation lock and serializes here without blocking writers.
func WriteCapture(w io.Writer, cap index.Capture, walEpoch uint64) error {
	return writeCapture(w, cap, version3, walEpoch)
}

func writeCapture(w io.Writer, cap index.Capture, version uint8, walEpoch uint64) error {
	// The capture is a coherent image: sealed partitions from one
	// snapshot plus an allocator position read after it, so nextID covers
	// every id the captured partitions hold.
	parts := cap.Parts
	nextID := cap.NextID

	if version < version2 {
		for pi, p := range parts {
			if p.DeadCount() > 0 {
				return fmt.Errorf("persist: partition %d has %d tombstones, not representable in format v1", pi, p.DeadCount())
			}
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(append(append([]byte(nil), magicPrefix...), version)); err != nil {
		return fmt.Errorf("persist: writing magic: %w", err)
	}
	cw := &countingWriter{w: bw, crc: crcFor(version)}
	le := binary.LittleEndian

	writeU32 := func(v uint32) error {
		var b [4]byte
		le.PutUint32(b[:], v)
		_, err := cw.Write(b[:])
		return err
	}
	writeF32s := func(vs []float32) error {
		buf := make([]byte, 4*len(vs))
		for i, v := range vs {
			le.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		_, err := cw.Write(buf)
		return err
	}

	pq := cap.PQ
	header := []uint32{
		uint32(cap.Dim), uint32(len(parts)),
		uint32(pq.M), uint32(pq.Bits), uint32(pq.SubDim),
	}
	for _, v := range header {
		if err := writeU32(v); err != nil {
			return fmt.Errorf("persist: writing header: %w", err)
		}
	}
	for j := 0; j < pq.M; j++ {
		if err := writeF32s(pq.Codebooks[j].Data); err != nil {
			return fmt.Errorf("persist: writing codebook %d: %w", j, err)
		}
	}
	if err := writeF32s(cap.Coarse.Data); err != nil {
		return fmt.Errorf("persist: writing coarse centroids: %w", err)
	}

	opt := cap.Opt
	var optBuf [14]byte
	le.PutUint64(optBuf[0:], math.Float64bits(opt.FastScan.Keep))
	le.PutUint32(optBuf[8:], uint32(int32(opt.FastScan.GroupComponents)))
	if opt.FastScan.OrderGroups {
		optBuf[12] = 1
	}
	if opt.OptimizeAssignment {
		optBuf[13] = 1
	}
	if _, err := cw.Write(optBuf[:]); err != nil {
		return fmt.Errorf("persist: writing options: %w", err)
	}

	if version >= version2 {
		var idBuf [8]byte
		le.PutUint64(idBuf[:], uint64(nextID))
		if _, err := cw.Write(idBuf[:]); err != nil {
			return fmt.Errorf("persist: writing next id: %w", err)
		}
	}
	if version >= version3 {
		var epochBuf [8]byte
		le.PutUint64(epochBuf[:], walEpoch)
		if _, err := cw.Write(epochBuf[:]); err != nil {
			return fmt.Errorf("persist: writing wal epoch: %w", err)
		}
	}

	for pi, p := range parts {
		if p.W != pq.M {
			return fmt.Errorf("persist: partition %d code width %d != pq m %d", pi, p.W, pq.M)
		}
		if err := writeU32(uint32(p.N)); err != nil {
			return fmt.Errorf("persist: writing partition %d size: %w", pi, err)
		}
		if _, err := cw.Write(p.Codes); err != nil {
			return fmt.Errorf("persist: writing partition %d codes: %w", pi, err)
		}
		idBuf := make([]byte, 8*p.N)
		for i := 0; i < p.N; i++ {
			le.PutUint64(idBuf[8*i:], uint64(p.ID(i)))
		}
		if _, err := cw.Write(idBuf); err != nil {
			return fmt.Errorf("persist: writing partition %d ids: %w", pi, err)
		}
		if version >= version2 {
			dead := p.DeadIDs()
			if err := writeU32(uint32(len(dead))); err != nil {
				return fmt.Errorf("persist: writing partition %d tombstone count: %w", pi, err)
			}
			deadBuf := make([]byte, 8*len(dead))
			for i, id := range dead {
				le.PutUint64(deadBuf[8*i:], uint64(id))
			}
			if _, err := cw.Write(deadBuf); err != nil {
				return fmt.Errorf("persist: writing partition %d tombstones: %w", pi, err)
			}
		}
	}

	var crcBuf [4]byte
	le.PutUint32(crcBuf[:], cw.crc.Sum32())
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("persist: writing checksum: %w", err)
	}
	if version >= version3 {
		if _, err := bw.Write(endMagic); err != nil {
			return fmt.Errorf("persist: writing end magic: %w", err)
		}
	}
	return bw.Flush()
}

type countingReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// ReadIndex deserializes an index written by WriteIndex or WriteIndexV1:
// the reader is backward compatible with every format version to date.
func ReadIndex(r io.Reader) (*index.Index, error) {
	return ReadIndexCells(r, nil)
}

// ReadIndexEpoch is ReadIndex returning also the WAL segment epoch the
// snapshot was stamped with (0 for formats before v3 and for plain
// exports) — the recovery path reads it to know which log segments to
// replay.
func ReadIndexEpoch(r io.Reader) (*index.Index, uint64, error) {
	return readIndexCells(r, nil)
}

// ReadIndexCells is ReadIndex restricted to a subset of coarse cells —
// the shard-side load path of scatter-gather cluster serving. A nil
// keep loads everything; otherwise partitions whose cell id is not in
// keep are decoded and discarded, leaving empty partitions in their
// slots. Cell count, centroids, quantizers and the id allocator are
// identical to a full load, so cell numbering stays global: a shard
// holding cells {2,5} of an 8-cell index computes the same residual
// tables and distances for those cells as a full single-node load.
// The trailing CRC still covers the whole file, skipped cells included.
func ReadIndexCells(r io.Reader, keep []int) (*index.Index, error) {
	ix, _, err := readIndexCells(r, keep)
	return ix, err
}

func readIndexCells(r io.Reader, keep []int) (*index.Index, uint64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicPrefix)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, fmt.Errorf("persist: reading magic: %w", err)
	}
	for i := range magicPrefix {
		if head[i] != magicPrefix[i] {
			return nil, 0, fmt.Errorf("persist: bad magic %q (not a pqfastscan index)", head)
		}
	}
	version := head[len(magicPrefix)]
	if version < version1 || version > version3 {
		return nil, 0, fmt.Errorf("persist: unsupported format version %d (this build reads versions %d-%d)", version, version1, version3)
	}
	cr := &countingReader{r: br, crc: crcFor(version)}
	le := binary.LittleEndian

	readU32 := func() (int, error) {
		var b [4]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return 0, err
		}
		v := le.Uint32(b[:])
		if v > maxReasonable {
			return 0, fmt.Errorf("persist: implausible size field %d", v)
		}
		return int(v), nil
	}
	readF32s := func(n int) ([]float32, error) {
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, err
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(le.Uint32(buf[4*i:]))
		}
		return out, nil
	}

	dim, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading dim: %w", err)
	}
	partitions, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading partition count: %w", err)
	}
	m, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading m: %w", err)
	}
	bits, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading bits: %w", err)
	}
	subdim, err := readU32()
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading subdim: %w", err)
	}
	if m <= 0 || bits <= 0 || bits > 16 || subdim <= 0 || m*subdim != dim || partitions <= 0 {
		return nil, 0, fmt.Errorf("persist: inconsistent header (dim=%d partitions=%d m=%d bits=%d subdim=%d)",
			dim, partitions, m, bits, subdim)
	}
	var keepSet map[int]bool
	if keep != nil {
		keepSet = make(map[int]bool, len(keep))
		for _, c := range keep {
			if c < 0 || c >= partitions {
				return nil, 0, fmt.Errorf("persist: kept cell %d out of range [0,%d)", c, partitions)
			}
			keepSet[c] = true
		}
	}
	cfg := quantizer.Config{M: m, Bits: bits}
	pq := &quantizer.ProductQuantizer{
		Config:    cfg,
		Dim:       dim,
		SubDim:    subdim,
		Codebooks: make([]vec.Matrix, m),
	}
	for j := 0; j < m; j++ {
		data, err := readF32s(cfg.KStar() * subdim)
		if err != nil {
			return nil, 0, fmt.Errorf("persist: reading codebook %d: %w", j, err)
		}
		pq.Codebooks[j] = vec.Matrix{Data: data, Dim: subdim}
	}
	coarseData, err := readF32s(partitions * dim)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: reading coarse centroids: %w", err)
	}
	coarse := vec.Matrix{Data: coarseData, Dim: dim}

	var optBuf [14]byte
	if _, err := io.ReadFull(cr, optBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("persist: reading options: %w", err)
	}
	opt := index.Options{
		Partitions:         partitions,
		PQ:                 cfg,
		OptimizeAssignment: optBuf[13] == 1,
		FastScan: scan.FastScanOptions{
			Keep:            math.Float64frombits(le.Uint64(optBuf[0:])),
			GroupComponents: int(int32(le.Uint32(optBuf[8:]))),
			OrderGroups:     optBuf[12] == 1,
		},
	}

	// Version 1 carries no id allocator; Restore recomputes it.
	nextID := int64(-1)
	if version >= version2 {
		var idBuf [8]byte
		if _, err := io.ReadFull(cr, idBuf[:]); err != nil {
			return nil, 0, fmt.Errorf("persist: reading next id: %w", err)
		}
		nextID = int64(le.Uint64(idBuf[:]))
		if nextID < 0 {
			return nil, 0, fmt.Errorf("persist: implausible next id %d", nextID)
		}
	}
	var walEpoch uint64
	if version >= version3 {
		var epochBuf [8]byte
		if _, err := io.ReadFull(cr, epochBuf[:]); err != nil {
			return nil, 0, fmt.Errorf("persist: reading wal epoch: %w", err)
		}
		walEpoch = le.Uint64(epochBuf[:])
	}

	parts := make([]*scan.Partition, partitions)
	for pi := 0; pi < partitions; pi++ {
		n, err := readU32()
		if err != nil {
			return nil, 0, fmt.Errorf("persist: reading partition %d size: %w", pi, err)
		}
		codes := make([]uint8, n*m)
		if _, err := io.ReadFull(cr, codes); err != nil {
			return nil, 0, fmt.Errorf("persist: reading partition %d codes: %w", pi, err)
		}
		idBuf := make([]byte, 8*n)
		if _, err := io.ReadFull(cr, idBuf); err != nil {
			return nil, 0, fmt.Errorf("persist: reading partition %d ids: %w", pi, err)
		}
		if version < version2 {
			// No stored allocator: recompute it here, over every cell's
			// ids — a subset load must not hand out ids that live in a
			// cell it skipped.
			for i := 0; i < n; i++ {
				if id := int64(le.Uint64(idBuf[8*i:])); id >= nextID {
					nextID = id + 1
				}
			}
		}
		kept := keepSet == nil || keepSet[pi]
		if kept {
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(le.Uint64(idBuf[8*i:]))
			}
			parts[pi] = scan.NewPartitionW(codes, ids, m)
		} else {
			// Skipped cell: the bytes were still read (the CRC covers
			// them), but the slot holds an empty partition.
			parts[pi] = scan.NewPartitionW(nil, nil, m)
		}
		if version >= version2 {
			nDead, err := readU32()
			if err != nil {
				return nil, 0, fmt.Errorf("persist: reading partition %d tombstone count: %w", pi, err)
			}
			if nDead > n {
				return nil, 0, fmt.Errorf("persist: partition %d has %d tombstones for %d vectors", pi, nDead, n)
			}
			deadBuf := make([]byte, 8*nDead)
			if _, err := io.ReadFull(cr, deadBuf); err != nil {
				return nil, 0, fmt.Errorf("persist: reading partition %d tombstones: %w", pi, err)
			}
			if kept {
				dead := make([]int64, nDead)
				for i := range dead {
					dead[i] = int64(le.Uint64(deadBuf[8*i:]))
				}
				parts[pi].RestoreDead(dead)
			}
		}
	}

	sum := cr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("persist: reading checksum: %w", err)
	}
	if got := le.Uint32(crcBuf[:]); got != sum {
		return nil, 0, fmt.Errorf("persist: checksum mismatch (file %#x, computed %#x)", got, sum)
	}
	if version >= version3 {
		end := make([]byte, len(endMagic))
		if _, err := io.ReadFull(br, end); err != nil {
			return nil, 0, fmt.Errorf("persist: reading end magic (file truncated?): %w", err)
		}
		for i := range endMagic {
			if end[i] != endMagic[i] {
				return nil, 0, fmt.Errorf("persist: bad end magic %q (file truncated or corrupt)", end)
			}
		}
	}
	return index.Restore(dim, coarse, pq, parts, opt, nextID), walEpoch, nil
}

// SaveIndex writes ix to path atomically and durably: write to a temp
// file in the same directory, fsync it, rename it into place, and fsync
// the parent directory so the rename itself survives power loss. Without
// the two fsyncs a crash shortly after SaveIndex could leave either an
// empty rename target or the old file — the classic torn-rename bug.
func SaveIndex(path string, ix *index.Index) error {
	cap, err := ix.Capture()
	if err != nil {
		return err
	}
	defer cap.Release()
	return saveCapture(fsio.OS, path, cap, version3, 0)
}

// SaveCapture atomically and durably writes a checkpoint capture
// stamped with its WAL epoch, through the given filesystem (the crash
// harness injects failing ones; production passes fsio.OS).
func SaveCapture(fsys fsio.FS, path string, cap index.Capture, walEpoch uint64) error {
	return saveCapture(fsys, path, cap, version3, walEpoch)
}

func saveCapture(fsys fsio.FS, path string, cap index.Capture, version uint8, walEpoch uint64) error {
	tmp, err := fsys.CreateTemp(dirOf(path), ".pqfsidx-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if err := writeCapture(tmp, cap, version, walEpoch); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: syncing temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing temp file: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: renaming into place: %w", err)
	}
	if err := fsys.SyncDir(dirOf(path)); err != nil {
		return fmt.Errorf("persist: syncing directory: %w", err)
	}
	return nil
}

// LoadIndex reads an index from path.
func LoadIndex(path string) (*index.Index, error) {
	return LoadIndexCells(path, nil)
}

// LoadIndexEpoch reads an index and its stamped WAL epoch from path,
// through the given filesystem — the recovery path.
func LoadIndexEpoch(fsys fsio.FS, path string) (*index.Index, uint64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("persist: opening index: %w", err)
	}
	defer f.Close()
	return readIndexCells(f, nil)
}

// LoadIndexCells reads an index from path keeping only the listed
// coarse cells (nil keeps all) — see ReadIndexCells.
func LoadIndexCells(path string, keep []int) (*index.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: opening index: %w", err)
	}
	defer f.Close()
	return ReadIndexCells(f, keep)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
