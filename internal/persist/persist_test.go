package persist

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
	"pqfastscan/internal/quantizer"
	"pqfastscan/internal/vec"
)

func buildSmall(t *testing.T) (*index.Index, *dataset.Generator) {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{Seed: 55, Dim: 32})
	learn := gen.Generate(2000)
	base := gen.Generate(8000)
	opt := index.DefaultOptions()
	opt.Partitions = 3
	opt.Seed = 55
	ix, err := index.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix, gen
}

func TestRoundtripIdenticalResults(t *testing.T) {
	ix, gen := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim != ix.Dim || loaded.Partitions() != ix.Partitions() {
		t.Fatalf("shape mismatch after reload")
	}
	if loaded.Options().FastScan.Keep != ix.Options().FastScan.Keep {
		t.Fatal("options lost in roundtrip")
	}
	queries := gen.Generate(5)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		for _, kern := range []index.Kernel{index.KernelLibpq, index.KernelFastScan} {
			want, _, wantPart, err := ix.Search(q, 20, kern)
			if err != nil {
				t.Fatal(err)
			}
			got, _, gotPart, err := loaded.Search(q, 20, kern)
			if err != nil {
				t.Fatal(err)
			}
			if wantPart != gotPart {
				t.Fatalf("query %d routed differently after reload", qi)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("query %d kernel %v result %d differs after reload", qi, kern, i)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix, gen := buildSmall(t)
	path := filepath.Join(t.TempDir(), "test.pqfsidx")
	if err := SaveIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Generate(1).Row(0)
	want, _, _, _ := ix.Search(q, 5, index.KernelFastScan)
	got, _, _, _ := loaded.Search(q, 5, index.KernelFastScan)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("results differ after file roundtrip")
		}
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOTANIDX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRejectsTruncated(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, 20, len(data) / 2, len(data) - 2} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRejectsCorruption(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Flip a bit in the middle of the payload: the CRC must catch it.
	data[len(data)/2] ^= 0x40
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestRejectsInconsistentHeader(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// dim field is right after the 8-byte magic; make m*subdim != dim.
	data[8] = 0xff
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("inconsistent header accepted")
	}
}

// TestTruncationSweep: no prefix of a valid index file may load
// successfully (systematic failure injection across the whole file).
func TestTruncationSweep(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := len(data)/200 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d loaded successfully", cut, len(data))
		}
	}
}

// TestBitFlipSweep: single-bit corruption anywhere in the payload must be
// detected (CRC) or rejected (header validation).
func TestBitFlipSweep(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	step := len(orig)/64 + 1
	for pos := 8; pos < len(orig); pos += step {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x01
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Fatalf("bit flip at byte %d loaded successfully", pos)
		}
	}
}

// TestRoundtripOrderGroups: a non-default OrderGroups/keep configuration
// survives the roundtrip and the reloaded index answers identically.
func TestRoundtripOrderGroups(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{Seed: 91, Dim: 32})
	opt := index.DefaultOptions()
	opt.Partitions = 3
	opt.Seed = 91
	opt.FastScan.OrderGroups = true
	opt.FastScan.Keep = 0.02
	ix, err := index.Build(gen.Generate(2000), gen.Generate(9000), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Options().FastScan
	if !got.OrderGroups || got.Keep != 0.02 {
		t.Fatalf("FastScan options lost in roundtrip: %+v", got)
	}
	q := gen.Generate(1).Row(0)
	want, _, _, err := ix.Search(q, 20, index.KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	have, _, _, err := loaded.Search(q, 20, index.KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("rank %d differs after OrderGroups roundtrip", i)
		}
	}
}

// TestRoundtripPQ16x4: a non-default quantizer shape (16 sub-quantizers
// of 4 bits) roundtrips structurally — codebooks, coarse centroids,
// partition codes and ids. The scan kernels require PQ 8x8, so querying
// such an index must fail with a clear error rather than panic.
func TestRoundtripPQ16x4(t *testing.T) {
	gen := dataset.NewGenerator(dataset.Config{Seed: 17, Dim: 32})
	opt := index.DefaultOptions()
	opt.Partitions = 2
	opt.Seed = 17
	opt.PQ = quantizer.PQ16x4
	ix, err := index.Build(gen.Generate(2000), gen.Generate(5000), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PQ.Config != ix.PQ.Config || loaded.PQ.SubDim != ix.PQ.SubDim {
		t.Fatalf("PQ config %+v subdim %d, want %+v subdim %d",
			loaded.PQ.Config, loaded.PQ.SubDim, ix.PQ.Config, ix.PQ.SubDim)
	}
	for j := range ix.PQ.Codebooks {
		a, b := ix.PQ.Codebooks[j].Data, loaded.PQ.Codebooks[j].Data
		if len(a) != len(b) {
			t.Fatalf("codebook %d size differs", j)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("codebook %d entry %d differs", j, i)
			}
		}
	}
	ixParts, loadedParts := ix.Parts(), loaded.Parts()
	for pi := range ixParts {
		a, b := ixParts[pi], loadedParts[pi]
		if a.N != b.N || a.W != b.W {
			t.Fatalf("partition %d shape (n=%d w=%d) != (n=%d w=%d)", pi, b.N, b.W, a.N, a.W)
		}
		if !bytes.Equal(a.Codes, b.Codes) {
			t.Fatalf("partition %d codes differ", pi)
		}
		for i := 0; i < a.N; i++ {
			if a.ID(i) != b.ID(i) {
				t.Fatalf("partition %d id %d differs", pi, i)
			}
		}
	}
	if _, err := loaded.Query(context.Background(), index.Request{
		Query: gen.Generate(1).Row(0), K: 5, Kernel: index.KernelFastScan,
	}); err == nil || !strings.Contains(err.Error(), "PQ 8x8") {
		t.Fatalf("querying a PQ16x4 index returned %v, want a PQ 8x8 requirement error", err)
	}
}

// TestV1StillLoads: files in the seed's version-1 format remain
// readable, answer identically, and recompute the id allocator.
func TestV1StillLoads(t *testing.T) {
	ix, gen := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndexV1(&buf, ix); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[7]; got != 1 {
		t.Fatalf("WriteIndexV1 wrote version byte %d", got)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NextID() != 8000 {
		t.Fatalf("v1 reload recomputed next id %d, want 8000", loaded.NextID())
	}
	q := gen.Generate(1).Row(0)
	want, _, _, err := ix.Search(q, 10, index.KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	have, _, _, err := loaded.Search(q, 10, index.KernelFastScan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("rank %d differs after v1 roundtrip", i)
		}
	}
}

// TestV1RefusesTombstones: format v1 cannot represent deletions, so the
// downgrade writer must refuse rather than silently resurrect vectors.
func TestV1RefusesTombstones(t *testing.T) {
	ix, _ := buildSmall(t)
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndexV1(io.Discard, ix); err == nil {
		t.Fatal("WriteIndexV1 accepted a tombstoned index")
	}
}

// TestRoundtripMutatedIndex: appended codes and tombstones survive the
// version-2 roundtrip; the reloaded index answers exactly like the
// mutated original.
func TestRoundtripMutatedIndex(t *testing.T) {
	ix, gen := buildSmall(t)
	added, err := ix.Add(gen.Generate(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(added); i += 4 {
		if err := ix.Delete(added[i]); err != nil {
			t.Fatalf("delete of %d failed: %v", added[i], err)
		}
	}
	for id := int64(0); id < 8000; id += 13 {
		if err := ix.Delete(id); err != nil {
			t.Fatalf("delete of %d failed: %v", id, err)
		}
	}

	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NextID() != ix.NextID() {
		t.Fatalf("next id %d, want %d", loaded.NextID(), ix.NextID())
	}
	if loaded.Live() != ix.Live() {
		t.Fatalf("live count %d, want %d", loaded.Live(), ix.Live())
	}
	queries := gen.Generate(5)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		for _, kern := range []index.Kernel{index.KernelNaive, index.KernelFastScan} {
			want, _, _, err := ix.Search(q, 25, kern)
			if err != nil {
				t.Fatal(err)
			}
			have, _, _, err := loaded.Search(q, 25, kern)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(have) {
				t.Fatalf("query %d kernel %v: size %d vs %d", qi, kern, len(have), len(want))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("query %d kernel %v rank %d differs after mutated roundtrip", qi, kern, i)
				}
			}
		}
	}
}

// TestRoundtripCompactedIndex: compaction rewrites partitions without
// their tombstones; the compacted image must persist with zero
// tombstones (ids stable), reload to bit-identical answers, and — no
// tombstones left — downgrade to format v1 again, so pre-mutation
// readers can consume a compacted index.
func TestRoundtripCompactedIndex(t *testing.T) {
	ix, gen := buildSmall(t)
	added, err := ix.Add(gen.Generate(400))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(added); i += 3 {
		if err := ix.Delete(added[i]); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(0); id < 8000; id += 10 {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := ix.Live()
	results, err := ix.Compact(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("nothing compacted")
	}

	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Live() != liveBefore {
		t.Fatalf("live %d after compacted roundtrip, want %d", loaded.Live(), liveBefore)
	}
	for pi, p := range loaded.Parts() {
		if p.DeadCount() != 0 {
			t.Fatalf("partition %d reloaded with %d tombstones after compaction", pi, p.DeadCount())
		}
		if p.N != p.Live() {
			t.Fatalf("partition %d rows %d != live %d", pi, p.N, p.Live())
		}
	}
	if loaded.NextID() != ix.NextID() {
		t.Fatalf("id allocator %d after reload, want %d (ids must stay stable)", loaded.NextID(), ix.NextID())
	}

	queries := gen.Generate(4)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		want, _, _, err := ix.Search(q, 25, index.KernelFastScan)
		if err != nil {
			t.Fatal(err)
		}
		have, _, _, err := loaded.Search(q, 25, index.KernelFastScan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("query %d rank %d differs after compacted roundtrip", qi, i)
			}
		}
	}

	// With tombstones reclaimed the v1 downgrade path reopens.
	if err := WriteIndexV1(io.Discard, ix); err != nil {
		t.Fatalf("WriteIndexV1 refused a compacted index: %v", err)
	}
}

// TestSaveDuringCompaction: WriteIndex serializes one atomically loaded
// snapshot, so saving while compaction (and deletes) republish
// partitions must produce a loadable, internally consistent image every
// time — no partial compactions, no id loss.
func TestSaveDuringCompaction(t *testing.T) {
	ix, gen := buildSmall(t)
	if _, err := ix.Add(gen.Generate(500)); err != nil {
		t.Fatal(err)
	}
	liveWant := ix.Live() // deletes below remove exactly deleteN distinct live ids
	const deleteN = 2000
	done := make(chan error, 1)
	go func() {
		for id := int64(0); id < deleteN; id++ {
			if err := ix.Delete(id); err != nil {
				done <- err
				return
			}
			if id%50 == 0 {
				if _, err := ix.Compact(0.001); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}()
	for i := 0; i < 12; i++ {
		var buf bytes.Buffer
		if err := WriteIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("snapshot %d did not load: %v", i, err)
		}
		// Each image is one consistent snapshot: ids are unique across
		// partitions and the allocator is beyond every persisted id.
		seen := make(map[int64]bool)
		maxID := int64(-1)
		for _, p := range loaded.Parts() {
			for j := 0; j < p.N; j++ {
				id := p.ID(j)
				if seen[id] {
					t.Fatalf("snapshot %d: id %d appears twice", i, id)
				}
				seen[id] = true
				if id > maxID {
					maxID = id
				}
			}
		}
		if loaded.NextID() <= maxID {
			t.Fatalf("snapshot %d: next id %d not beyond max persisted id %d", i, loaded.NextID(), maxID)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Compact(0); err != nil {
		t.Fatal(err)
	}
	if got := ix.Live(); got != liveWant-deleteN {
		t.Fatalf("live %d after storm, want %d", got, liveWant-deleteN)
	}
}

// TestSaveDuringMutation: WriteIndex serializes one atomically loaded
// epoch snapshot, so saving while Add/Delete traffic is in flight must
// neither race (run under -race) nor produce a torn file: every written
// image must load cleanly with a consistent id allocator.
func TestSaveDuringMutation(t *testing.T) {
	ix, gen := buildSmall(t)
	extra := gen.Generate(300)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < extra.Rows(); i++ {
			ids, err := ix.Add(vec.Matrix{Data: extra.Row(i), Dim: 32})
			if err != nil {
				done <- err
				return
			}
			if i%4 == 0 {
				if err := ix.Delete(ids[0]); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := WriteIndex(&buf, ix); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatalf("snapshot %d did not load: %v", i, err)
		}
		maxID := int64(-1)
		for _, p := range loaded.Parts() {
			for j := 0; j < p.N; j++ {
				if id := p.ID(j); id > maxID {
					maxID = id
				}
			}
		}
		if loaded.NextID() <= maxID {
			t.Fatalf("snapshot %d: next id %d not beyond max persisted id %d", i, loaded.NextID(), maxID)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
