package persist

import (
	"bytes"
	"path/filepath"
	"testing"

	"pqfastscan/internal/dataset"
	"pqfastscan/internal/index"
)

func buildSmall(t *testing.T) (*index.Index, *dataset.Generator) {
	t.Helper()
	gen := dataset.NewGenerator(dataset.Config{Seed: 55, Dim: 32})
	learn := gen.Generate(2000)
	base := gen.Generate(8000)
	opt := index.DefaultOptions()
	opt.Partitions = 3
	opt.Seed = 55
	ix, err := index.Build(learn, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ix, gen
}

func TestRoundtripIdenticalResults(t *testing.T) {
	ix, gen := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dim != ix.Dim || len(loaded.Parts) != len(ix.Parts) {
		t.Fatalf("shape mismatch after reload")
	}
	if loaded.Options().FastScan.Keep != ix.Options().FastScan.Keep {
		t.Fatal("options lost in roundtrip")
	}
	queries := gen.Generate(5)
	for qi := 0; qi < queries.Rows(); qi++ {
		q := queries.Row(qi)
		for _, kern := range []index.Kernel{index.KernelLibpq, index.KernelFastScan} {
			want, _, wantPart, err := ix.Search(q, 20, kern)
			if err != nil {
				t.Fatal(err)
			}
			got, _, gotPart, err := loaded.Search(q, 20, kern)
			if err != nil {
				t.Fatal(err)
			}
			if wantPart != gotPart {
				t.Fatalf("query %d routed differently after reload", qi)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("query %d kernel %v result %d differs after reload", qi, kern, i)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix, gen := buildSmall(t)
	path := filepath.Join(t.TempDir(), "test.pqfsidx")
	if err := SaveIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Generate(1).Row(0)
	want, _, _, _ := ix.Search(q, 5, index.KernelFastScan)
	got, _, _, _ := loaded.Search(q, 5, index.KernelFastScan)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("results differ after file roundtrip")
		}
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOTANIDX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRejectsTruncated(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{9, 20, len(data) / 2, len(data) - 2} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRejectsCorruption(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// Flip a bit in the middle of the payload: the CRC must catch it.
	data[len(data)/2] ^= 0x40
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestRejectsInconsistentHeader(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// dim field is right after the 8-byte magic; make m*subdim != dim.
	data[8] = 0xff
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Fatal("inconsistent header accepted")
	}
}

// TestTruncationSweep: no prefix of a valid index file may load
// successfully (systematic failure injection across the whole file).
func TestTruncationSweep(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	step := len(data)/200 + 1
	for cut := 0; cut < len(data); cut += step {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d loaded successfully", cut, len(data))
		}
	}
}

// TestBitFlipSweep: single-bit corruption anywhere in the payload must be
// detected (CRC) or rejected (header validation).
func TestBitFlipSweep(t *testing.T) {
	ix, _ := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	step := len(orig)/64 + 1
	for pos := 8; pos < len(orig); pos += step {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x01
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Fatalf("bit flip at byte %d loaded successfully", pos)
		}
	}
}
