// Tests for the cluster-facing server features: explicit-cell search,
// liveness/readiness split, deferred index load, the two-phase snapshot
// swap and drain semantics (DESIGN.md §13).
package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pqfastscan"
)

func TestSearchWithExplicitCells(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})

	for qi := 0; qi < 4; qi++ {
		q := queries.Row(qi)
		cells := []int{(qi % 4), (qi + 2) % 4}
		var got SearchResponse
		status, body := postJSON(t, hs.URL+"/search",
			SearchRequest{Query: q, K: 10, Cells: cells}, &got)
		if status != http.StatusOK {
			t.Fatalf("cells search status %d: %s", status, body)
		}
		want, err := idx.Search(t.Context(), q, 10, pqfastscan.WithCells(cells...))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
		}
		for i, r := range want.Results {
			if got.Results[i].ID != r.ID || got.Results[i].Distance != r.Distance {
				t.Fatalf("rank %d: got %+v want %+v", i, got.Results[i], r)
			}
		}
	}
}

func TestSearchCellsValidation(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})
	q := queries.Row(0)

	cases := []struct {
		name string
		req  SearchRequest
	}{
		{"cells and nprobe together", SearchRequest{Query: q, K: 5, NProbe: 2, Cells: []int{0}}},
		{"cell out of range", SearchRequest{Query: q, K: 5, Cells: []int{99}}},
		{"negative cell", SearchRequest{Query: q, K: 5, Cells: []int{-1}}},
		{"duplicate cell", SearchRequest{Query: q, K: 5, Cells: []int{1, 1}}},
	}
	for _, tc := range cases {
		if status, body := postJSON(t, hs.URL+"/search", tc.req, nil); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, status, body)
		}
	}
}

func TestReadyzDuringDeferredLoad(t *testing.T) {
	idx, queries := sharedIndex(t)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	s, err := New(Config{Load: func() (*pqfastscan.Index, error) {
		<-release
		return idx, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	// Runs before s.Close (LIFO), so a failing test cannot deadlock the
	// cleanup on a load goroutine still parked on release.
	t.Cleanup(releaseOnce)
	hs := newHTTPServer(t, s)

	// While loading: alive, not ready, data endpoints 503.
	if st := getJSON(t, hs.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz while warming: status %d, want 200", st)
	}
	if st := getJSON(t, hs.URL+"/readyz", nil); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz while warming: status %d, want 503", st)
	}
	if st, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(0), K: 3}, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("search while warming: status %d, want 503 (%s)", st, body)
	}

	releaseOnce()
	deadline := time.Now().Add(5 * time.Second)
	for getJSON(t, hs.URL+"/readyz", nil) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after load completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var got SearchResponse
	if st, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(0), K: 3}, &got); st != http.StatusOK {
		t.Fatalf("search after warmup: status %d (%s)", st, body)
	}
	if len(got.Results) != 3 {
		t.Fatalf("search after warmup returned %d results, want 3", len(got.Results))
	}
}

func TestReadyzAfterFailedLoad(t *testing.T) {
	s, err := New(Config{Load: func() (*pqfastscan.Index, error) {
		return nil, errLoadBoom
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	hs := newHTTPServer(t, s)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz after failed load: status %d, want 503", resp.StatusCode)
		}
		if s.loadErr.Load() != nil {
			break // failure recorded; 503 above was the final answer
		}
		if time.Now().After(deadline) {
			t.Fatal("load failure never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := getJSON(t, hs.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz after failed load: status %d, want 200 (liveness must not flap)", st)
	}
}

var errLoadBoom = errBoom{}

type errBoom struct{}

func (errBoom) Error() string { return "disk on fire" }

func TestMetaEndpoint(t *testing.T) {
	idx, _ := sharedIndex(t)
	cells := []int{1, 3}
	_, hs := newTestServer(t, Config{Index: idx, Cells: cells})

	var meta MetaResponse
	if st := getJSON(t, hs.URL+"/meta", &meta); st != http.StatusOK {
		t.Fatalf("meta status %d", st)
	}
	if meta.Dim != idx.Dim() || meta.Partitions != idx.Partitions() || meta.PQM != idx.PQM() {
		t.Fatalf("meta geometry %+v disagrees with index (dim=%d parts=%d m=%d)",
			meta, idx.Dim(), idx.Partitions(), idx.PQM())
	}
	if len(meta.Cells) != 2 || meta.Cells[0] != 1 || meta.Cells[1] != 3 {
		t.Fatalf("meta cells = %v, want [1 3]", meta.Cells)
	}
	want := idx.CoarseCentroids()
	if len(meta.Centroids) != len(want) {
		t.Fatalf("meta has %d centroids, want %d", len(meta.Centroids), len(want))
	}
	// JSON must round-trip the centroids bit-exactly: the router ranks
	// cells with these floats and must reproduce the engine's order.
	for i := range want {
		for j := range want[i] {
			if meta.Centroids[i][j] != want[i][j] {
				t.Fatalf("centroid [%d][%d] = %v, want %v (JSON round trip not exact)",
					i, j, meta.Centroids[i][j], want[i][j])
			}
		}
	}
}

func TestTwoPhaseSwap(t *testing.T) {
	serving := buildIndex(t, 21, 2000, 4000)
	next := buildIndex(t, 22, 2000, 6000)
	path := filepath.Join(t.TempDir(), "next.idx")
	if err := next.Save(path); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Index: serving})

	// Commit with nothing staged is a protocol error.
	if st, body := postJSON(t, hs.URL+"/swap/commit", struct{}{}, nil); st != http.StatusConflict {
		t.Fatalf("commit without prepare: status %d, want 409 (%s)", st, body)
	}

	var prep PrepareResponse
	if st, body := postJSON(t, hs.URL+"/swap/prepare", SwapRequest{Path: path}, &prep); st != http.StatusOK {
		t.Fatalf("prepare: status %d (%s)", st, body)
	}
	if !prep.Prepared || prep.Live != next.Live() {
		t.Fatalf("prepare response %+v, want prepared with live=%d", prep, next.Live())
	}
	// Nothing is visible until commit.
	if serving.Live() == next.Live() {
		t.Fatal("prepare already changed the serving index")
	}

	var com CommitResponse
	if st, body := postJSON(t, hs.URL+"/swap/commit", struct{}{}, &com); st != http.StatusOK {
		t.Fatalf("commit: status %d (%s)", st, body)
	}
	if !com.Committed || com.Live != next.Live() || serving.Live() != next.Live() {
		t.Fatalf("commit response %+v; serving live %d, want %d", com, serving.Live(), next.Live())
	}

	// The staged slot is consumed: a second commit fails.
	if st, _ := postJSON(t, hs.URL+"/swap/commit", struct{}{}, nil); st != http.StatusConflict {
		t.Fatalf("second commit: status %d, want 409", st)
	}
}

func TestSwapAbortDiscardsStaged(t *testing.T) {
	serving := buildIndex(t, 23, 2000, 4000)
	next := buildIndex(t, 24, 2000, 5000)
	path := filepath.Join(t.TempDir(), "next.idx")
	if err := next.Save(path); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Index: serving})

	if st, body := postJSON(t, hs.URL+"/swap/prepare", SwapRequest{Path: path}, nil); st != http.StatusOK {
		t.Fatalf("prepare: status %d (%s)", st, body)
	}
	var ab AbortResponse
	if st, _ := postJSON(t, hs.URL+"/swap/abort", struct{}{}, &ab); st != http.StatusOK || !ab.Discarded {
		t.Fatalf("abort: status %d, response %+v, want discarded", st, ab)
	}
	// Abort with nothing staged succeeds but discards nothing.
	if st, _ := postJSON(t, hs.URL+"/swap/abort", struct{}{}, &ab); st != http.StatusOK || ab.Discarded {
		t.Fatalf("idempotent abort: status %d, response %+v, want not discarded", st, ab)
	}
	// And the staged snapshot is really gone.
	if st, _ := postJSON(t, hs.URL+"/swap/commit", struct{}{}, nil); st != http.StatusConflict {
		t.Fatalf("commit after abort: status %d, want 409", st)
	}
}

func TestSwapPrepareRejectsIncompatible(t *testing.T) {
	serving := buildIndex(t, 25, 2000, 4000)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 26, Dim: 64})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4
	other, err := pqfastscan.Build(gen.Generate(2000), gen.Generate(3000), opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.idx")
	if err := other.Save(path); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Index: serving})

	if st, body := postJSON(t, hs.URL+"/swap/prepare", SwapRequest{Path: path}, nil); st != http.StatusConflict {
		t.Fatalf("prepare of incompatible snapshot: status %d, want 409 (%s)", st, body)
	}
	if st, _ := postJSON(t, hs.URL+"/swap/commit", struct{}{}, nil); st != http.StatusConflict {
		t.Fatalf("commit after rejected prepare: status %d, want 409", st)
	}
}

func TestShardedServerLoadsOnlyItsCells(t *testing.T) {
	full := buildIndex(t, 27, 2000, 6000)
	path := filepath.Join(t.TempDir(), "full.idx")
	if err := full.Save(path); err != nil {
		t.Fatal(err)
	}
	cells := []int{0, 2}
	sizes := full.PartitionSizes()
	wantLive := sizes[0] + sizes[2]

	serving := buildIndex(t, 27, 2000, 100) // same geometry, placeholder data
	_, hs := newTestServer(t, Config{Index: serving, Cells: cells})

	// One-shot /swap applies the cell restriction.
	var swap SwapResponse
	if st, body := postJSON(t, hs.URL+"/swap", SwapRequest{Path: path}, &swap); st != http.StatusOK {
		t.Fatalf("swap: status %d (%s)", st, body)
	}
	if swap.Live != wantLive {
		t.Fatalf("sharded swap live = %d, want %d (cells 0+2 of %v)", swap.Live, wantLive, sizes)
	}
	for c, n := range swap.Partitions {
		holds := c == 0 || c == 2
		if holds && n != sizes[c] {
			t.Fatalf("cell %d holds %d vectors, want %d", c, n, sizes[c])
		}
		if !holds && n != 0 {
			t.Fatalf("cell %d should be empty on this shard, holds %d", c, n)
		}
	}

	// Two-phase prepare applies it too.
	if st, body := postJSON(t, hs.URL+"/swap/prepare", SwapRequest{Path: path}, nil); st != http.StatusOK {
		t.Fatalf("prepare: status %d (%s)", st, body)
	}
	var com CommitResponse
	if st, body := postJSON(t, hs.URL+"/swap/commit", struct{}{}, &com); st != http.StatusOK {
		t.Fatalf("commit: status %d (%s)", st, body)
	}
	if com.Live != wantLive {
		t.Fatalf("sharded two-phase swap live = %d, want %d", com.Live, wantLive)
	}
}

func TestDrainFlipsReadyzButKeepsServing(t *testing.T) {
	idx, queries := sharedIndex(t)
	s, err := New(Config{Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)
	t.Cleanup(func() { s.Close() })

	if st := getJSON(t, hs.URL+"/readyz", nil); st != http.StatusOK {
		t.Fatalf("readyz before drain: status %d", st)
	}
	s.BeginDrain()
	if st := getJSON(t, hs.URL+"/readyz", nil); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", st)
	}
	if st := getJSON(t, hs.URL+"/healthz", nil); st != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200", st)
	}
	// Requests already arriving keep being served during the drain.
	if st, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(0), K: 3}, nil); st != http.StatusOK {
		t.Fatalf("search during drain: status %d (%s)", st, body)
	}
}

// TestShutdownCompletesInFlightRequest is the graceful-shutdown
// contract end to end: a request parked in the batching window when
// shutdown begins must complete with its answer, and the listener's
// Shutdown must wait for it. This mirrors the SIGTERM path of pqserve
// (BeginDrain → http.Server.Shutdown → server.Close).
func TestShutdownCompletesInFlightRequest(t *testing.T) {
	idx, queries := sharedIndex(t)
	s, err := New(Config{Index: idx, BatchWindow: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(t, s)

	var wg sync.WaitGroup
	const n = 4
	statuses := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = postJSON(t, hs.URL+"/search",
				SearchRequest{Query: queries.Row(i), K: 5}, nil)
		}(i)
	}
	time.Sleep(25 * time.Millisecond) // requests are parked in the batch window

	// The pqserve SIGTERM sequence: drain, stop the engine, then close
	// the listener. Close blocks until the batcher has served everything
	// already submitted, so every parked request gets its real answer.
	s.BeginDrain()
	shutdownDone := make(chan struct{})
	go func() {
		s.Close()
		close(shutdownDone)
	}()
	wg.Wait()
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("in-flight request %d: status %d (%s), want 200", i, st, bodies[i])
		}
	}
}

// newHTTPServer wraps a Server in an httptest listener, registering
// cleanup for the listener only — tests that exercise shutdown own the
// Server.Close call.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs
}
