package server

import (
	"runtime"
	"sync/atomic"
	"time"

	"pqfastscan"
	"pqfastscan/internal/hist"
	"pqfastscan/internal/plan"
)

// Observability is lock-free: every counter is an atomic, so recording a
// sample from a request goroutine never contends with another request or
// with a /stats read. Latencies go into the shared geometric histograms
// of internal/hist (1µs doubling buckets, quantile error bounded by one
// bucket width — the right fidelity for p50/p99 dashboards at zero
// steady-state allocation).

// endpointMetrics aggregates one HTTP endpoint.
type endpointMetrics struct {
	requests atomic.Int64 // all requests, including rejected ones
	errors   atomic.Int64 // responses with status >= 500
	rejected atomic.Int64 // responses with status in [400, 500)
	lat      hist.Hist
}

// EndpointStats is the /stats projection of one endpoint.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

func (m *endpointMetrics) stats() EndpointStats {
	return EndpointStats{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Rejected: m.rejected.Load(),
		P50Ms:    m.lat.QuantileMs(0.50),
		P99Ms:    m.lat.QuantileMs(0.99),
		MeanMs:   m.lat.MeanMs(),
		MaxMs:    m.lat.MaxMs(),
	}
}

// batchWidthBuckets histograms SearchBatch widths by power of two:
// bucket i counts batches of width in [2^i, 2^(i+1)).
const batchWidthBuckets = 13

// metrics is the server-wide metric registry.
type metrics struct {
	start time.Time

	endpoints map[string]*endpointMetrics

	// Micro-batching.
	batchCalls   atomic.Int64 // SearchBatch invocations issued
	batchQueries atomic.Int64 // queries served through those calls
	batchMax     atomic.Int64 // widest batch seen
	batchWidths  [batchWidthBuckets]atomic.Int64

	// Admission control.
	shed            atomic.Int64 // requests rejected 429 by admission control
	deadlineRejects atomic.Int64 // requests answered 504: budget spent before scanning

	// Snapshot lifecycle.
	swaps      atomic.Int64
	saves      atomic.Int64
	saveErrors atomic.Int64
	lastSave   atomic.Int64 // unix seconds, 0 = never

	// Online compaction.
	compactions      atomic.Int64 // partitions compacted
	compactReclaimed atomic.Int64 // tombstoned rows reclaimed
	compactErrors    atomic.Int64
	lastCompact      atomic.Int64 // unix seconds, 0 = never
}

func newMetrics(endpoints []string) *metrics {
	m := &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

func (m *metrics) observeBatch(width int) {
	m.batchCalls.Add(1)
	m.batchQueries.Add(int64(width))
	for {
		cur := m.batchMax.Load()
		if int64(width) <= cur || m.batchMax.CompareAndSwap(cur, int64(width)) {
			break
		}
	}
	b := 0
	for w := width; w > 1 && b < batchWidthBuckets-1; w >>= 1 {
		b++
	}
	m.batchWidths[b].Add(1)
}

// BatchStats is the /stats projection of the micro-batcher.
type BatchStats struct {
	Calls    int64   `json:"calls"`
	Queries  int64   `json:"queries"`
	AvgWidth float64 `json:"avg_width"`
	MaxWidth int64   `json:"max_width"`
	// WidthHist counts batches by power-of-two width class: entry i is
	// the number of batches of width in [2^i, 2^(i+1)).
	WidthHist []int64 `json:"width_hist"`
}

func (m *metrics) batchStats() BatchStats {
	s := BatchStats{
		Calls:    m.batchCalls.Load(),
		Queries:  m.batchQueries.Load(),
		MaxWidth: m.batchMax.Load(),
	}
	if s.Calls > 0 {
		s.AvgWidth = float64(s.Queries) / float64(s.Calls)
	}
	hi := 0
	var widths [batchWidthBuckets]int64
	for i := range widths {
		widths[i] = m.batchWidths[i].Load()
		if widths[i] > 0 {
			hi = i + 1
		}
	}
	s.WidthHist = append([]int64(nil), widths[:hi]...)
	return s
}

// Stats is the full /stats document.
type Stats struct {
	UptimeS float64 `json:"uptime_s"`
	// Backend is the active native-engine block-kernel backend
	// (asm-avx2, asm-neon or swar) and CPUFeatures the SIMD feature set
	// detection saw — on /stats so fleet dashboards can spot hosts that
	// silently fell back to the portable path.
	Backend     string   `json:"backend"`
	CPUFeatures []string `json:"cpu_features,omitempty"`
	Live        int      `json:"live"`
	// Partitions is the total row count per cell (live + tombstoned),
	// kept for dashboard compatibility; PartitionStats carries the
	// occupancy breakdown.
	Partitions []int `json:"partitions"`
	// PartitionStats reports, per cell, the live and tombstoned row
	// counts, the dead ratio the compaction policy acts on, and the
	// epoch number of the currently published partition version.
	PartitionStats []pqfastscan.PartitionStat `json:"partition_stats"`
	Endpoints      map[string]EndpointStats   `json:"endpoints"`
	Batch          BatchStats                 `json:"batch"`
	// Planner reports the adaptive per-query planner: decision counters
	// (nprobe histogram, kernel/backend picks, cold fallbacks) and the
	// scan-cost observations behind them. Always present — even without
	// Config.Auto, individual requests invoke the planner with ?auto=1
	// or ?recall=.
	Planner    PlannerStats    `json:"planner"`
	Admission  AdmissionStats  `json:"admission"`
	Snapshot   SnapshotStats   `json:"snapshot"`
	Compaction CompactionStats `json:"compaction"`
	// WAL is present only when the server runs durably (-wal-dir): log
	// size, record count and fsync latency quantiles.
	WAL *pqfastscan.WALStats `json:"wal,omitempty"`
	// BufPool is present only when the server pages partition data from
	// a disk store (-store-dir): the extent footprint on disk and the
	// buffer pool's hit/miss/eviction counters with resident and pinned
	// bytes — the numbers that show whether the working set fits.
	BufPool *pqfastscan.StoreStats `json:"bufpool,omitempty"`
	// Mem reports Go runtime memory, the cross-check for paged serving:
	// heap in use should track pool capacity plus index metadata, not
	// the full extent footprint.
	Mem MemStats `json:"mem"`
}

// MemStats is the /stats projection of runtime.MemStats.
type MemStats struct {
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

// readMemStats samples the Go runtime. ReadMemStats stops the world
// briefly; /stats polling cadence (seconds) makes that negligible.
func readMemStats() MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemStats{
		HeapInuseBytes: ms.HeapInuse,
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		NumGC:          ms.NumGC,
	}
}

// PlannerStats is the /stats projection of the adaptive planner:
// whether Config.Auto plans every request by default, plus the
// process-wide decision counters and cost observations.
type PlannerStats struct {
	Enabled bool `json:"enabled"`
	plan.Stats
}

// CompactionStats is the /stats projection of online compaction.
type CompactionStats struct {
	Threshold       float64 `json:"threshold"`
	Runs            int64   `json:"runs"`      // partitions compacted
	Reclaimed       int64   `json:"reclaimed"` // tombstoned rows removed
	Errors          int64   `json:"errors"`
	LastCompactUnix int64   `json:"last_compact_unix"`
}

// AdmissionStats is the /stats projection of admission control.
type AdmissionStats struct {
	MaxInFlight  int    `json:"max_in_flight"`
	InFlight     int    `json:"in_flight"`
	Shed         int64  `json:"shed"`
	QueueTimeout string `json:"queue_timeout"`
	// DeadlineRejects counts requests answered 504 because their
	// forwarded deadline budget was spent before any scan work ran —
	// rejected at the door or dropped from a micro-batch window.
	DeadlineRejects int64 `json:"deadline_rejects"`
}

// SnapshotStats is the /stats projection of the snapshot lifecycle.
type SnapshotStats struct {
	Swaps        int64  `json:"swaps"`
	Saves        int64  `json:"saves"`
	SaveErrors   int64  `json:"save_errors"`
	LastSaveUnix int64  `json:"last_save_unix"`
	Path         string `json:"path,omitempty"`
}
