// Dynamic micro-batching. One goroutine per socket is the wrong shape
// for the engine underneath: SearchBatch drives the per-core batch loop
// at full width, while N concurrent single-query Search calls pay N
// routing/locking rounds and leave the batch loop one query wide. The
// batcher inverts that: concurrent /search requests arriving within a
// short window are coalesced into one SearchBatch call and the per-query
// results fanned back out to the waiting handlers.
//
// Coalescing is dynamic in both directions: a batch closes as soon as
// MaxBatch queries are pending (no idle waiting under heavy load, where
// the window only adds latency) and no later than BatchWindow after its
// first query (bounded added latency under light load). Requests whose
// search parameters differ cannot share a SearchBatch call, so a closed
// window is partitioned by (k, nprobe, kernel) and one call issued per
// group — the common case of a homogeneous client population stays one
// call per window.
package server

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"time"

	"pqfastscan"
)

// errClosed is returned to requests that race server shutdown.
var errClosed = errors.New("server: shutting down")

// errExpiredInBatch is returned to a request whose deadline (or
// client connection) expired while it was parked in the micro-batch
// window: it is dropped from the batch before any scan work is spent
// on it, and the handler answers 504. The rest of its batch runs
// unaffected.
var errExpiredInBatch = errors.New("server: deadline expired while queued for batching")

// batchKey identifies searches that may share one SearchBatch call.
// Fields are the normalized search parameters (defaults applied), so two
// requests spelling the default differently still coalesce. cells is
// the canonical explicit-cell list ("" when the request routes through
// the coarse quantizer): router sub-requests for the same cell set —
// the common case under scatter-gather fanout, where a hot query
// population probes the same top cells — coalesce exactly like
// same-nprobe client requests do. Planned requests carry the planner's
// concrete choices (backend, parallel) in the key, so planned and
// explicit requests resolving to the same configuration coalesce too;
// planned marks the plan class, which picks the collection window.
type batchKey struct {
	k        int
	nprobe   int
	kernel   pqfastscan.Kernel
	backend  pqfastscan.Backend
	parallel bool
	planned  bool
	cells    string
}

// cellsKey canonicalizes an explicit cell list for batch grouping. The
// scan visits cells in the given order, so order is part of the key —
// two requests probing the same set in a different order return the
// same results but are not coalesced (routers emit a deterministic
// order, so this does not cost coalescing in practice).
func cellsKey(cells []int) string {
	if len(cells) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// searchJob is one /search request in flight through the batcher.
type searchJob struct {
	key batchKey
	// ctx is the request's deadline-carrying context. The batch itself
	// never runs under it (shared work must not be cancelled by one
	// client) — it is only consulted at dispatch time to drop jobs
	// whose budget expired while parked in the window. nil means no
	// deadline tracking (tests construct bare jobs).
	ctx   context.Context
	cells []int
	query []float32
	resp  *pqfastscan.SearchResult
	err   error
	done  chan struct{}
}

type batcher struct {
	idx     *pqfastscan.Index
	window  time.Duration
	max     int
	timeout time.Duration // per-batch engine deadline
	metrics *metrics

	jobs chan *searchJob
	quit chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

func newBatcher(idx *pqfastscan.Index, window time.Duration, maxBatch int, timeout time.Duration, m *metrics) *batcher {
	b := &batcher{
		idx:     idx,
		window:  window,
		max:     maxBatch,
		timeout: timeout,
		metrics: m,
		jobs:    make(chan *searchJob, 4*maxBatch),
		quit:    make(chan struct{}),
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// submit hands one job to the batching loop. The caller waits on
// job.done; every submitted job is eventually completed, including
// across shutdown.
func (b *batcher) submit(j *searchJob) error {
	// The RLock pairs with close(): once closed is set no new job can
	// enter the channel, so the final drain in run() is complete and no
	// waiter is ever stranded.
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return errClosed
	}
	b.jobs <- j
	return nil
}

// close stops the batching loop after serving everything already
// submitted, then waits for in-flight SearchBatch calls to finish.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	b.wg.Wait()
}

// run is the collection loop: block for a first job, keep the window
// open until it expires or the batch is full, dispatch, repeat.
func (b *batcher) run() {
	defer b.wg.Done()
	pending := make([]*searchJob, 0, b.max)
	for {
		var first *searchJob
		select {
		case first = <-b.jobs:
		case <-b.quit:
			b.drain()
			return
		}
		pending = append(pending[:0], first)
		// The collection window follows the first job's plan class: a
		// planned single-probe query declared a min-latency objective, so
		// charging it the full coalescing window would spend on waiting
		// what the planner just saved on scanning. Recall-targeted plans
		// (nprobe > 1) and explicit requests keep the full window — their
		// scan time dominates it.
		win := b.window
		if first.key.planned && first.key.nprobe <= 1 && first.key.cells == "" {
			win /= 4
		}
		timer := time.NewTimer(win)
	collect:
		for len(pending) < b.max {
			select {
			case j := <-b.jobs:
				pending = append(pending, j)
			case <-timer.C:
				break collect
			case <-b.quit:
				break collect
			}
		}
		timer.Stop()
		b.dispatch(pending)
		select {
		case <-b.quit:
			b.drain()
			return
		default:
		}
	}
}

// drain serves whatever shutdown left in the channel. By the time quit
// is closed no submit can add more (see submit), so the default case is
// a complete stop condition.
func (b *batcher) drain() {
	pending := make([]*searchJob, 0, b.max)
	for {
		select {
		case j := <-b.jobs:
			pending = append(pending, j)
			if len(pending) == b.max {
				b.dispatch(pending)
				pending = pending[:0]
			}
		default:
			if len(pending) > 0 {
				b.dispatch(pending)
			}
			return
		}
	}
}

// dispatch groups a closed window by batchKey and issues one SearchBatch
// per group on its own goroutine, so the collection loop is immediately
// free to form the next window while this one executes.
func (b *batcher) dispatch(jobs []*searchJob) {
	groups := make(map[batchKey][]*searchJob, 1)
	for _, j := range jobs {
		groups[j.key] = append(groups[j.key], j)
	}
	for key, group := range groups {
		b.wg.Add(1)
		group := group
		go func(key batchKey, group []*searchJob) {
			defer b.wg.Done()
			b.execute(key, group)
		}(key, group)
	}
}

// execute runs one coalesced SearchBatch call and fans results back out.
// The call runs under a server-owned deadline, not any one client's
// context: the work is shared across requests, so a single disconnecting
// client must not cancel its neighbors' queries. Jobs whose own
// deadline expired while parked in the window are dropped here — their
// budget is spent, scanning for them would be pure waste — and the
// rest of the group runs as if they were never submitted.
func (b *batcher) execute(key batchKey, group []*searchJob) {
	live := group[:0:0]
	for _, j := range group {
		if j.ctx != nil && j.ctx.Err() != nil {
			j.err = errExpiredInBatch
			close(j.done)
			continue
		}
		live = append(live, j)
	}
	group = live
	if len(group) == 0 {
		return
	}
	ctx := context.Background()
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	queries := pqfastscan.NewMatrix(len(group), len(group[0].query))
	for i, j := range group {
		copy(queries.Row(i), j.query)
	}
	b.metrics.observeBatch(len(group))
	opts := []pqfastscan.SearchOption{pqfastscan.WithKernel(key.kernel)}
	if key.backend != pqfastscan.BackendAuto {
		opts = append(opts, pqfastscan.WithBackend(key.backend))
	}
	if key.parallel {
		opts = append(opts, pqfastscan.WithParallel())
	}
	if len(group[0].cells) > 0 {
		// All jobs in a group share the same canonical cell list (it is
		// part of the batch key), so the first job's slice speaks for all.
		opts = append(opts, pqfastscan.WithCells(group[0].cells...))
	} else {
		opts = append(opts, pqfastscan.WithNProbe(key.nprobe))
	}
	resps, err := b.idx.SearchBatch(ctx, queries, key.k, opts...)
	for i, j := range group {
		if err != nil {
			j.err = err
		} else {
			j.resp = resps[i]
		}
		close(j.done)
	}
}
