package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pqfastscan"
)

// postWithDeadline posts a /search with a relative deadline budget.
func postWithDeadline(t *testing.T, url string, body any, deadlineMs string) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/search", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, deadlineMs)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

func TestExpiredDeadlineRejectedAtTheDoor(t *testing.T) {
	idx, queries := sharedIndex(t)
	s, hs := newTestServer(t, Config{Index: idx})

	req := SearchRequest{Query: queries.Row(0), K: 5}
	for _, budget := range []string{"0", "-5"} {
		status, body := postWithDeadline(t, hs.URL, req, budget)
		if status != http.StatusGatewayTimeout {
			t.Fatalf("deadline %s: status %d, want 504: %s", budget, status, body)
		}
	}
	status, body := postWithDeadline(t, hs.URL, req, "not-a-number")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("malformed deadline: status %d, want 504: %s", status, body)
	}
	if got := s.StatsSnapshot().Admission.DeadlineRejects; got != 3 {
		t.Fatalf("deadline_rejects = %d, want 3", got)
	}

	// A generous budget passes through untouched.
	status, body = postWithDeadline(t, hs.URL, req, "5000")
	if status != http.StatusOK {
		t.Fatalf("live deadline: status %d: %s", status, body)
	}
}

// TestExpiredInBatchWindowDropped is the satellite bugfix test: a
// request whose deadline expires while parked in the micro-batch
// window must be dropped from the batch and answered 504 without any
// scan work spent on it — and the rest of its batch is unaffected.
func TestExpiredInBatchWindowDropped(t *testing.T) {
	idx, queries := sharedIndex(t)
	s, hs := newTestServer(t, Config{
		Index:       idx,
		BatchWindow: 250 * time.Millisecond, // long window: the deadline expires inside it
		MaxBatch:    16,
	})

	type result struct {
		status int
		body   string
	}
	doomed := make(chan result, 1)
	go func() {
		status, body := postWithDeadline(t, hs.URL, SearchRequest{Query: queries.Row(0), K: 5}, "30")
		doomed <- result{status, body}
	}()
	// Let the doomed request open the window, then join the same batch
	// with an unconstrained neighbor.
	time.Sleep(10 * time.Millisecond)
	neighbor := make(chan result, 1)
	go func() {
		status, body := postJSONStatus(t, hs.URL+"/search", SearchRequest{Query: queries.Row(1), K: 5, NProbe: 2})
		neighbor <- result{status, body}
	}()

	d := <-doomed
	if d.status != http.StatusGatewayTimeout {
		t.Fatalf("doomed request: status %d, want 504: %s", d.status, d.body)
	}
	n := <-neighbor
	if n.status != http.StatusOK {
		t.Fatalf("neighbor in the same batch: status %d, want 200: %s", n.status, n.body)
	}

	// The neighbor's answer is bit-identical to a direct query — the
	// drop must not perturb the batch it was parked in.
	var got SearchResponse
	if err := json.Unmarshal([]byte(n.body), &got); err != nil {
		t.Fatal(err)
	}
	want, err := idx.Search(context.Background(), queries.Row(1), 5, pqfastscan.WithNProbe(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("neighbor got %d results, want %d", len(got.Results), len(want.Results))
	}
	for i, w := range want.Results {
		if got.Results[i].ID != w.ID || got.Results[i].Distance != w.Distance {
			t.Fatalf("neighbor rank %d: %+v, want %+v", i, got.Results[i], w)
		}
	}

	st := s.StatsSnapshot()
	if st.Admission.DeadlineRejects != 1 {
		t.Fatalf("deadline_rejects = %d, want 1", st.Admission.DeadlineRejects)
	}
	// No scan work burned: the coalesced SearchBatch ran only the
	// neighbor's query.
	if st.Batch.Queries != 1 {
		t.Fatalf("batched queries = %d, want 1 (the expired job must not be scanned)", st.Batch.Queries)
	}
}

// postJSONStatus is postJSON but returns the body on any status.
func postJSONStatus(t *testing.T, url string, body any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}
