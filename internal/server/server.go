// Package server is the network-facing query service over a pqfastscan
// index: an HTTP/JSON API multiplexing many clients onto the engine's
// batch primitives. Three mechanisms make it hold up under load
// (DESIGN.md §10):
//
//   - dynamic micro-batching — concurrent /search requests are coalesced
//     into SearchBatch calls (batcher.go), driving the per-core batch
//     loop at full width instead of one goroutine per socket;
//   - admission control — a bounded in-flight limit with queue-timeout
//     rejection (429), so overload degrades by shedding requests while
//     the accepted ones keep bounded latency;
//   - hot snapshot swap — /swap loads a persisted index from disk and
//     atomically replaces the serving snapshot under live traffic
//     (in-flight queries drain on the old one), and a background loop
//     periodically persists the mutable serving index.
//
// Per-endpoint request counts, latency quantiles, batch widths and shed
// counts are exported on /stats (metrics.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pqfastscan"
	"pqfastscan/internal/plan"
)

// Config configures a Server. The zero value of every tuning field
// selects a sensible default; exactly one of Index and Load is
// required.
type Config struct {
	// Index is the serving snapshot holder. The server retains this
	// exact handle and re-points it on /swap, so the caller can share it
	// (e.g. for out-of-band mutation).
	Index *pqfastscan.Index

	// Load, when set instead of Index, defers the index load: New
	// returns immediately with the server in warming state (/readyz
	// 503, data endpoints 503, /healthz alive) and runs Load on a
	// background goroutine; the server becomes ready when it returns.
	// This is what lets a shard expose liveness and readiness probes
	// while a large index file is still streaming in, so a cluster
	// router (or a k8s-style deployment) routes around the warming
	// process instead of timing out on it.
	Load func() (*pqfastscan.Index, error)

	// Cells, when non-nil, declares the IVF cells this server is
	// responsible for — the shard assignment of cluster serving. It is
	// reported on /meta and applied to every snapshot load the server
	// performs itself (/swap and /swap/prepare load only these cells
	// via LoadIndexCells). It does not restrict queries: cell numbering
	// is global, and a scan of a cell the shard does not hold simply
	// finds an empty partition.
	Cells []int

	// Auto enables the adaptive per-query planner for every /search by
	// default: dimensions the request leaves open (nprobe, kernel,
	// backend, parallelism) are chosen from live cost observations
	// (DESIGN.md §16) as if each request carried ?auto=1. Individual
	// requests opt out with ?auto=0. Without Auto, a request still opts
	// in with ?auto=1 or by setting a ?recall= target. Planned answers
	// are bit-identical to the fixed-option request probing the same
	// cell prefix.
	Auto bool

	// BatchWindow is the longest a /search request waits for companions
	// to coalesce with (default 1ms). Zero selects the default; negative
	// disables waiting (batches still form from queue backlog).
	BatchWindow time.Duration
	// MaxBatch closes a window early once this many queries are pending
	// (default 64).
	MaxBatch int

	// MaxInFlight bounds concurrently admitted /search requests
	// (default 8×GOMAXPROCS). Requests beyond it wait up to QueueTimeout
	// for a slot and are then rejected with 429.
	MaxInFlight int
	// QueueTimeout is the longest a request waits for admission
	// (default 50ms).
	QueueTimeout time.Duration

	// SearchTimeout bounds one coalesced engine call (default 30s).
	SearchTimeout time.Duration
	// MaxK rejects requests asking for more neighbors than this
	// (default 1000).
	MaxK int
	// MaxBodyBytes caps a request body (default 8 MiB — room for a
	// few-thousand-vector /add batch). Oversized bodies fail decoding
	// with 400 instead of buffering unboundedly.
	MaxBodyBytes int64

	// SnapshotPath, when set, is where /save and the periodic saver
	// persist the serving index.
	SnapshotPath string
	// SaveInterval enables periodic background Save when positive. With
	// WALDir set, the periodic save is a checkpoint: it persists the
	// durable snapshot and truncates the write-ahead log.
	SaveInterval time.Duration

	// WALDir, when set, makes the serving index crash-safe: every
	// acknowledged /add and /delete is write-ahead logged into this
	// directory before the 200 is sent, and startup recovers the exact
	// acknowledged state from the snapshot + log found there (the server
	// reports "recovering" on /readyz until replay completes). When the
	// directory holds durable state, it takes precedence over Index/Load
	// as the boot source — the recovered state is, by construction, the
	// newest acknowledged one.
	WALDir string
	// WALSyncEvery, when positive, switches the log to batched group
	// commit (fsync every N records) instead of sync-on-ack.
	WALSyncEvery int
	// WALSyncInterval, when positive, adds a background fsync every
	// interval (bounds batched-mode data loss in time).
	WALSyncInterval time.Duration

	// StoreDir, when set, serves the index beyond RAM: partition data is
	// sealed into disk-resident extents under this directory and paged
	// through a buffer pool bounded at PoolBytes, so the resident set is
	// the pool plus index metadata instead of the full index. Applied to
	// every index this server installs — the boot index and every /swap
	// or /swap/prepare load (staged and serving indexes share the pool).
	// The directory is owned by this process; extents are a rebuildable
	// cache, not durable state.
	StoreDir string
	// PoolBytes bounds the buffer pool when StoreDir is set (default
	// pqfastscan.DefaultPoolBytes).
	PoolBytes int64

	// CompactInterval enables the background compaction policy when
	// positive: every interval, partitions whose dead ratio reaches
	// CompactThreshold are rebuilt online without their tombstones.
	CompactInterval time.Duration
	// CompactThreshold is the dead ratio (tombstoned rows / total rows)
	// at which the background policy compacts a partition (default
	// 0.25). The explicit /compact endpoint takes its own threshold.
	CompactThreshold float64

	// Logf, when set, receives operational log lines (swaps, saves,
	// shutdown). Defaults to discarding them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 50 * time.Millisecond
	}
	if c.SearchTimeout <= 0 {
		c.SearchTimeout = 30 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 0.25
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// endpoints instrumented in /stats, in display order.
var endpointNames = []string{
	"/search", "/add", "/delete", "/healthz", "/readyz", "/meta", "/stats",
	"/swap", "/swap/prepare", "/swap/commit", "/swap/abort", "/save", "/compact",
}

// Server serves a pqfastscan index over HTTP. Create with New, mount
// Handler on an http.Server, and Close when done.
type Server struct {
	cfg     Config
	metrics *metrics
	mux     *http.ServeMux

	// idx and batch are nil until the (possibly deferred) index load
	// installs them; every data endpoint checks ready() first, so the
	// nil window is only observable as 503 warming responses.
	idx   atomic.Pointer[pqfastscan.Index]
	batch atomic.Pointer[batcher]

	// warming is true from New until the index is installed; loadErr
	// carries a failed deferred load's message for /readyz.
	warming atomic.Bool
	loadErr atomic.Pointer[string]
	// recovering is true while startup WAL replay runs — a sub-state of
	// warming that /readyz names explicitly, since recovery time scales
	// with log length rather than index size.
	recovering atomic.Bool
	// draining is set by Close (and BeginDrain) so readiness probes and
	// routers steer new traffic away while in-flight work finishes.
	draining atomic.Bool

	// Two-phase snapshot swap state (DESIGN.md §13): /swap/prepare
	// stages a loaded-and-validated index without serving it,
	// /swap/commit publishes it atomically, /swap/abort discards it.
	// preparing counts in-flight prepare loads for /readyz.
	stagedMu   sync.Mutex
	staged     *pqfastscan.Index
	stagedPath string
	preparing  atomic.Int32

	sem chan struct{} // admission tokens; len(sem) = in-flight

	// swapMu orders snapshot replacement against everything that writes
	// the serving index: /swap and /save hold it exclusively, /add and
	// /delete share it. A mutation that returned 200 therefore happened
	// entirely before or entirely after a swap — never astride it. Note
	// the swap semantics it does NOT change: /swap replaces the whole
	// serving state, so mutations accepted since the incoming snapshot
	// was saved are intentionally discarded with it (operators who want
	// them call /save first; see DESIGN.md §10).
	swapMu sync.RWMutex

	quit      chan struct{}
	closeOnce sync.Once
	bg        sync.WaitGroup
}

// New builds a Server around cfg.Index, or — when cfg.Load is set —
// around a deferred index load that completes in the background while
// the server is already answering liveness probes.
func New(cfg Config) (*Server, error) {
	if cfg.Index != nil && cfg.Load != nil {
		return nil, errors.New("server: at most one of Config.Index and Config.Load may be set")
	}
	if cfg.Index == nil && cfg.Load == nil {
		// No in-process index and no loader: the only remaining boot
		// source is durable state already present in WALDir.
		if cfg.WALDir == "" || !pqfastscan.HasDurable(cfg.WALDir) {
			return nil, errors.New("server: one of Config.Index, Config.Load or a WALDir holding durable state is required")
		}
	}
	cfg = cfg.withDefaults()
	m := newMetrics(endpointNames)
	s := &Server{
		cfg:     cfg,
		metrics: m,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		quit:    make(chan struct{}),
	}
	s.warming.Store(true)

	s.mux = http.NewServeMux()
	s.handle("/search", http.MethodPost, s.handleSearch)
	s.handle("/add", http.MethodPost, s.handleAdd)
	s.handle("/delete", http.MethodPost, s.handleDelete)
	s.handle("/healthz", http.MethodGet, s.handleHealthz)
	s.handle("/readyz", http.MethodGet, s.handleReadyz)
	s.handle("/meta", http.MethodGet, s.handleMeta)
	s.handle("/stats", http.MethodGet, s.handleStats)
	s.handle("/swap", http.MethodPost, s.handleSwap)
	s.handle("/swap/prepare", http.MethodPost, s.handleSwapPrepare)
	s.handle("/swap/commit", http.MethodPost, s.handleSwapCommit)
	s.handle("/swap/abort", http.MethodPost, s.handleSwapAbort)
	s.handle("/save", http.MethodPost, s.handleSave)
	s.handle("/compact", http.MethodPost, s.handleCompact)

	switch {
	case cfg.WALDir != "":
		// A durable boot always runs deferred, even with an in-process
		// Index: recovery replay time scales with the log, and the server
		// should answer probes (reporting "recovering") meanwhile.
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			idx, err := s.openDurable()
			if err == nil {
				err = s.attachStore(idx)
			}
			if err != nil {
				msg := err.Error()
				s.loadErr.Store(&msg)
				s.cfg.Logf("server: durable index open failed: %v", err)
				return
			}
			s.install(idx)
			s.cfg.Logf("server: durable index ready, serving %d live vectors (wal %s)", idx.Live(), cfg.WALDir)
		}()
	case cfg.Index != nil:
		if err := s.attachStore(cfg.Index); err != nil {
			return nil, err
		}
		s.install(cfg.Index)
	default:
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			idx, err := cfg.Load()
			if err == nil {
				err = s.attachStore(idx)
			}
			if err != nil {
				msg := err.Error()
				s.loadErr.Store(&msg)
				s.cfg.Logf("server: deferred index load failed: %v", err)
				return
			}
			s.install(idx)
			s.cfg.Logf("server: index loaded, serving %d live vectors", idx.Live())
		}()
	}

	if cfg.SaveInterval > 0 && (cfg.SnapshotPath != "" || cfg.WALDir != "") {
		s.bg.Add(1)
		go s.saveLoop()
	}
	if cfg.CompactInterval > 0 {
		s.bg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// openDurable opens the crash-safe serving index: recovery from WALDir
// when it holds durable state (snapshot + log replay), otherwise a
// fresh durable boot from the configured Index or Load with the WAL
// switched on. Existing durable state wins over Index/Load — it is, by
// construction, the newest acknowledged state.
func (s *Server) openDurable() (*pqfastscan.Index, error) {
	opts := pqfastscan.DurabilityOptions{
		SyncEvery:    s.cfg.WALSyncEvery,
		SyncInterval: s.cfg.WALSyncInterval,
	}
	if pqfastscan.HasDurable(s.cfg.WALDir) {
		s.recovering.Store(true)
		defer s.recovering.Store(false)
		idx, err := pqfastscan.Recover(s.cfg.WALDir, opts)
		if err != nil {
			return nil, err
		}
		s.cfg.Logf("server: recovered durable state from %s", s.cfg.WALDir)
		return idx, nil
	}
	idx := s.cfg.Index
	if idx == nil {
		var err error
		if idx, err = s.cfg.Load(); err != nil {
			return nil, err
		}
	}
	if err := idx.WithWAL(s.cfg.WALDir, opts); err != nil {
		return nil, err
	}
	return idx, nil
}

// attachStore applies the configured disk store to an index this server
// is about to serve (no-op without StoreDir). Every index attaching to
// the same StoreDir shares one buffer pool, so a staged swap
// replacement competes for — rather than doubles — the memory budget.
func (s *Server) attachStore(idx *pqfastscan.Index) error {
	if s.cfg.StoreDir == "" {
		return nil
	}
	return idx.WithDiskStore(s.cfg.StoreDir, s.cfg.PoolBytes)
}

// install publishes the loaded index and its batcher and flips the
// server ready. The batcher is stored before the index: handlers gate
// on the index pointer (requireIndex), so observing it non-nil
// guarantees the batcher is there too.
func (s *Server) install(idx *pqfastscan.Index) {
	s.batch.Store(newBatcher(idx, s.cfg.BatchWindow, s.cfg.MaxBatch, s.cfg.SearchTimeout, s.metrics))
	s.idx.Store(idx)
	s.warming.Store(false)
}

// requireIndex returns the serving index, or answers 503 and returns
// nil while a deferred load is still warming (or has failed). Every
// data endpoint calls it first, so the nil-index window of a deferred
// load is observable only as a not-ready response, never a crash.
func (s *Server) requireIndex(w http.ResponseWriter) *pqfastscan.Index {
	if idx := s.idx.Load(); idx != nil {
		return idx
	}
	msg := "warming up: index load in progress"
	if e := s.loadErr.Load(); e != nil {
		msg = "index load failed: " + *e
	}
	httpError(w, http.StatusServiceUnavailable, msg)
	return nil
}

// ready reports whether the index is installed and data endpoints can
// serve. Draining servers stay "ready" for in-flight semantics — the
// readiness probe is what goes negative, steering new traffic away.
func (s *Server) ready() bool { return !s.warming.Load() }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Index returns the serving snapshot holder (nil while a deferred load
// is still warming).
func (s *Server) Index() *pqfastscan.Index { return s.idx.Load() }

// BeginDrain marks the server not-ready without stopping it: /readyz
// turns 503 so probes and routers steer new traffic away, while
// everything already in flight (and still arriving) is served normally.
// Deployments call it on SIGTERM, then shut the HTTP listener down,
// then Close.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the batcher (after serving everything already admitted)
// and the background loops. It does not close HTTP listeners; that is
// the owning http.Server's job.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		// The deferred load goroutine (if any) is part of bg and may
		// still install the batcher; wait for it before closing, so the
		// batcher cannot be created after its close.
		s.bg.Wait()
		if b := s.batch.Load(); b != nil {
			b.close()
		}
		if idx := s.idx.Load(); idx != nil {
			if err := idx.CloseWAL(); err != nil {
				s.cfg.Logf("server: closing wal: %v", err)
			}
		}
	})
	return nil
}

// handle mounts an instrumented single-method handler.
func (s *Server) handle(path, method string, h func(http.ResponseWriter, *http.Request)) {
	em := s.metrics.endpoints[path]
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		em.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if r.Method != method {
			httpError(sw, http.StatusMethodNotAllowed, fmt.Sprintf("use %s", method))
		} else {
			// Bound every body before the first decode: a runaway
			// payload must fail fast, not buffer its way past the
			// admission control that protects the engine.
			if r.Body != nil {
				r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
			}
			h(sw, r)
		}
		em.lat.Observe(time.Since(start))
		switch {
		case sw.status >= 500:
			em.errors.Add(1)
		case sw.status >= 400:
			em.rejected.Add(1)
		}
	})
}

// statusWriter records the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by the client; net/http has no named constant for it.
const statusClientClosedRequest = 499

// DeadlineHeader carries a request's remaining deadline budget as a
// relative millisecond count. Relative, not an absolute timestamp, so
// clock skew between router and shard cannot corrupt it: each hop
// reads the remainder of its own context deadline and forwards that.
// A shard receiving an expired or non-positive budget answers 504
// before doing any scan work.
const DeadlineHeader = "X-Pq-Deadline-Ms"

// deadlineContext applies a DeadlineHeader budget to the request
// context. Missing header: untouched context. Malformed or spent
// budget: an error the handler answers with 504.
func deadlineContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return r.Context(), func() {}, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return nil, nil, fmt.Errorf("bad %s header %q", DeadlineHeader, v)
	}
	if ms <= 0 {
		return nil, nil, fmt.Errorf("deadline already expired (%s: %d)", DeadlineHeader, ms)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// admitVerdict says how an admission attempt ended. Only admitShed is
// overload: a canceled client or a closing server sheds nothing, and
// counting those as sheds would fake the operator's overload signal.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	admitShed
	admitCanceled
	admitClosing
)

// admit implements admission control for /search: take a token
// immediately if one is free, otherwise wait at most QueueTimeout.
func (s *Server) admit(r *http.Request) admitVerdict {
	select {
	case s.sem <- struct{}{}:
		return admitOK
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return admitOK
	case <-t.C:
		return admitShed
	case <-r.Context().Done():
		return admitCanceled
	case <-s.quit:
		return admitClosing
	}
}

func (s *Server) release() { <-s.sem }

// --- /search -----------------------------------------------------------

// SearchRequest is the /search body. K defaults to 10, NProbe to 1 and
// Kernel to the engine default (PQ Fast Scan) when omitted. Cells, when
// present, scans exactly those IVF cells instead of routing through the
// coarse quantizer — the sub-request shape a cluster router sends to
// its shards (nprobe must then be omitted). Backend pins the Fast Scan
// block-kernel backend ("swar", "asm-avx2", "asm-neon"); omitted means
// automatic. Omitted fields are exactly the ones the planner fills when
// the request is planned (?auto=1, ?recall=, or Config.Auto).
type SearchRequest struct {
	Query   []float32 `json:"query"`
	K       int       `json:"k"`
	NProbe  int       `json:"nprobe,omitempty"`
	Cells   []int     `json:"cells,omitempty"`
	Kernel  string    `json:"kernel,omitempty"`
	Backend string    `json:"backend,omitempty"`
}

// SearchNeighbor is one neighbor in a /search response.
type SearchNeighbor struct {
	ID       int64   `json:"id"`
	Distance float32 `json:"distance"`
}

// SearchResponse is the /search reply.
type SearchResponse struct {
	Results    []SearchNeighbor `json:"results"`
	Partitions []int            `json:"partitions"`
	// Coverage is set only on a router's degraded (partial) answer:
	// how many of the ranked probe cells were actually scanned. A
	// single node always answers in full and omits it.
	Coverage *Coverage `json:"coverage,omitempty"`
}

// Coverage quantifies a partial scatter-gather answer.
type Coverage struct {
	CellsAnswered int `json:"cells_answered"`
	CellsTotal    int `json:"cells_total"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	// An expired forwarded deadline is rejected at the door: no
	// parsing beyond the header, no planning, no admission token, no
	// scan work.
	ctx, cancelDeadline, derr := deadlineContext(r)
	if derr != nil {
		s.metrics.deadlineRejects.Add(1)
		httpError(w, http.StatusGatewayTimeout, derr.Error())
		return
	}
	defer cancelDeadline()
	// Planner activation: ?recall=0.95 sets a recall target (and implies
	// planning); ?auto=1 asks for min-latency planning; Config.Auto makes
	// planning the default, which ?auto=0 opts a single request out of.
	planned := s.cfg.Auto
	if v := r.URL.Query().Get("auto"); v != "" {
		planned = v == "1" || v == "true"
	}
	recall := 0.0
	if v := r.URL.Query().Get("recall"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		// The affirmative range check also rejects NaN, which slips
		// through ParseFloat and compares false against every bound.
		if err != nil || !(f > 0 && f <= 1) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("recall must be a number in (0,1], got %q", v))
			return
		}
		recall = f
		planned = true
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	// Which dimensions the request pins explicitly — captured before
	// defaults are applied, because the planner fills only open ones.
	nprobeSet := req.NProbe != 0
	kernelSet := req.Kernel != ""
	backendSet := req.Backend != ""
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > s.cfg.MaxK {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1,%d]", s.cfg.MaxK))
		return
	}
	if dim := idx.Dim(); len(req.Query) != dim {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("query dim %d != index dim %d", len(req.Query), dim))
		return
	}
	np := idx.Partitions()
	if len(req.Cells) > 0 {
		if req.NProbe != 0 {
			httpError(w, http.StatusBadRequest, "cells and nprobe are mutually exclusive")
			return
		}
		seen := make(map[int]bool, len(req.Cells))
		for _, c := range req.Cells {
			if c < 0 || c >= np {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("cell %d out of range [0,%d)", c, np))
				return
			}
			if seen[c] {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("cell %d listed twice", c))
				return
			}
			seen[c] = true
		}
	} else {
		if req.NProbe == 0 {
			req.NProbe = 1
		}
		if req.NProbe < 1 || req.NProbe > np {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("nprobe must be in [1,%d]", np))
			return
		}
	}
	kernel := pqfastscan.KernelFastScan
	if req.Kernel != "" {
		k, err := pqfastscan.ParseKernel(req.Kernel)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		kernel = k
	}
	backend := pqfastscan.BackendAuto
	if req.Backend != "" {
		b, err := pqfastscan.ParseBackend(req.Backend)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		backend = b
	}

	// Plan before admission and batching, so jobs enter the batcher with
	// concrete parameters and coalesce by planned class — two planned
	// requests that resolve to the same (nprobe, kernel, backend) share
	// one SearchBatch call exactly like explicitly-optioned ones.
	parallel := false
	if planned {
		fast := kernel == pqfastscan.KernelFastScan || kernel == pqfastscan.KernelFastScan256
		preq := plan.Request{
			Query:        req.Query,
			Recall:       recall,
			PlanNProbe:   !nprobeSet && len(req.Cells) == 0,
			PlanKernel:   !kernelSet,
			PlanBackend:  !backendSet && (!kernelSet || fast),
			PlanParallel: true,
			FixedNProbe:  req.NProbe,
			Cells:        req.Cells,
			FastKernel:   fast,
		}
		d := plan.Decide(idx.Internal(), preq)
		if preq.PlanNProbe {
			req.NProbe = d.NProbe
		}
		if preq.PlanKernel {
			kernel = d.Kernel
		}
		if preq.PlanBackend {
			backend = d.Backend
		}
		parallel = d.Parallel
	}

	switch s.admit(r) {
	case admitOK:
	case admitShed:
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "overloaded: admission queue timed out")
		return
	case admitCanceled:
		// The client gave up while queued; nobody reads this response
		// and no overload happened, so it is not a shed.
		httpError(w, statusClientClosedRequest, "client canceled while queued")
		return
	case admitClosing:
		httpError(w, http.StatusServiceUnavailable, errClosed.Error())
		return
	}
	defer s.release()

	job := &searchJob{
		key: batchKey{
			k: req.K, nprobe: req.NProbe, kernel: kernel, backend: backend,
			parallel: parallel, planned: planned, cells: cellsKey(req.Cells),
		},
		ctx:   ctx,
		cells: req.Cells,
		query: req.Query,
		done:  make(chan struct{}),
	}
	if err := s.batch.Load().submit(job); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// Wait for the coalesced call regardless of the client's context:
	// the work is shared with other requests in the batch, and the token
	// must reflect engine occupancy, not socket liveness.
	<-job.done
	if job.err != nil {
		// A job whose deadline expired while parked in the batch window
		// was dropped before any scan work; the batch it was parked in
		// ran without it.
		if errors.Is(job.err, errExpiredInBatch) {
			s.metrics.deadlineRejects.Add(1)
			httpError(w, http.StatusGatewayTimeout, job.err.Error())
			return
		}
		httpError(w, http.StatusInternalServerError, job.err.Error())
		return
	}
	resp := SearchResponse{
		Results:    make([]SearchNeighbor, len(job.resp.Results)),
		Partitions: job.resp.Partitions,
	}
	for i, res := range job.resp.Results {
		resp.Results[i] = SearchNeighbor{ID: res.ID, Distance: res.Distance}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /add --------------------------------------------------------------

// AddRequest carries vectors to index online, row per vector.
type AddRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

// AddResponse returns the ids assigned to the added vectors, in order.
type AddResponse struct {
	IDs []int64 `json:"ids"`
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Vectors) == 0 {
		httpError(w, http.StatusBadRequest, "vectors must be non-empty")
		return
	}
	dim := idx.Dim()
	m := pqfastscan.NewMatrix(len(req.Vectors), dim)
	for i, v := range req.Vectors {
		if len(v) != dim {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("vector %d dim %d != index dim %d", i, len(v), dim))
			return
		}
		copy(m.Row(i), v)
	}
	// Shared side of swapMu: concurrent adds proceed together (the index
	// write lock orders them), but never interleave with a /swap.
	s.swapMu.RLock()
	ids, err := idx.AddBatch(m)
	s.swapMu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, AddResponse{IDs: ids})
}

// --- /delete -----------------------------------------------------------

// DeleteRequest names the vector id to tombstone.
type DeleteRequest struct {
	ID int64 `json:"id"`
}

// DeleteResponse acknowledges a completed delete.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.swapMu.RLock()
	err := idx.Delete(req.ID)
	s.swapMu.RUnlock()
	if errors.Is(err, pqfastscan.ErrNotFound) {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: true})
}

// --- /healthz, /readyz, /meta, /stats ----------------------------------

// handleHealthz is the liveness probe: it answers 200 whenever the
// process is up — including while the index is still loading, while a
// swap-prepare is staging, and while the server drains for shutdown. A
// supervisor restarting on liveness failures must never kill a process
// that is merely warming or draining; that is what /readyz signals.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The scan backend is surfaced here (not only on /stats) so
	// deployment probes can verify a host is actually running the
	// assembly kernels and not a silent SWAR fallback.
	live := 0
	if idx := s.idx.Load(); idx != nil {
		live = idx.Live()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"live":     live,
		"uptime_s": time.Since(s.metrics.start).Seconds(),
		"backend":  pqfastscan.ActiveBackend().String(),
	})
}

// handleReadyz is the readiness probe: 200 only when the server wants
// new traffic. It goes 503 (with a reason) while the initial index load
// is in progress or has failed, while a /swap/prepare is loading and
// validating a snapshot, and from the moment a drain begins — so
// routers and deployment probes steer requests elsewhere during exactly
// the windows where this process would serve them slowly or not at all.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		httpError(w, http.StatusServiceUnavailable, "draining: shutdown in progress")
	case s.recovering.Load():
		httpError(w, http.StatusServiceUnavailable, "recovering: wal replay in progress")
	case s.warming.Load():
		msg := "warming up: index load in progress"
		if e := s.loadErr.Load(); e != nil {
			msg = "index load failed: " + *e
		}
		httpError(w, http.StatusServiceUnavailable, msg)
	case s.preparing.Load() > 0:
		httpError(w, http.StatusServiceUnavailable, "swap prepare in progress")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// MetaResponse is the /meta reply: the immutable shape of the serving
// index plus this server's shard assignment. A cluster router reads it
// at startup to learn the coarse centroids (for bit-identical cell
// ranking), validate that every shard serves the same geometry, and
// check cell coverage.
type MetaResponse struct {
	Dim        int `json:"dim"`
	Partitions int `json:"partitions"`
	PQM        int `json:"pq_m"`
	Live       int `json:"live"`
	// Cells is the shard assignment (Config.Cells); absent means the
	// server holds every cell, i.e. it is a whole-index node.
	Cells []int `json:"cells,omitempty"`
	// Centroids is the coarse quantizer codebook, row per IVF cell.
	// float32 values survive a JSON round trip exactly (encoding/json
	// formats them shortest-form and parses back to the same bits), so
	// the router's cell ranking matches the engine's bit-for-bit.
	Centroids [][]float32 `json:"centroids"`
	// CellSizes is the live row count per cell (cells this server does
	// not hold report 0) — the mass signal a router needs to map a
	// ?recall= target to the same probe-prefix length a single node's
	// planner would pick (DESIGN.md §16).
	CellSizes []int  `json:"cell_sizes,omitempty"`
	Backend   string `json:"backend"`
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	pstats := idx.PartitionStats()
	sizes := make([]int, len(pstats))
	for i, ps := range pstats {
		sizes[i] = ps.Live
	}
	writeJSON(w, http.StatusOK, MetaResponse{
		Dim:        idx.Dim(),
		Partitions: idx.Partitions(),
		PQM:        idx.PQM(),
		Live:       idx.Live(),
		Cells:      s.cfg.Cells,
		Centroids:  idx.CoarseCentroids(),
		CellSizes:  sizes,
		Backend:    pqfastscan.ActiveBackend().String(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// StatsSnapshot assembles the current /stats document. Live, Partitions
// and PartitionStats all derive from one PartitionStats() call — one
// epoch snapshot — so the document is internally consistent
// (live == sum of per-partition live, partitions[i] == live+dead) no
// matter what mutations land while it is built.
func (s *Server) StatsSnapshot() Stats {
	var pstats []pqfastscan.PartitionStat
	var walStats *pqfastscan.WALStats
	var storeStats *pqfastscan.StoreStats
	if idx := s.idx.Load(); idx != nil {
		pstats = idx.PartitionStats()
		if ws, ok := idx.WALStats(); ok {
			walStats = &ws
		}
		if ss, ok := idx.StoreStats(); ok {
			storeStats = &ss
		}
	}
	live := 0
	sizes := make([]int, len(pstats))
	for i, ps := range pstats {
		live += ps.Live
		sizes[i] = ps.Live + ps.Dead
	}
	st := Stats{
		UptimeS:        time.Since(s.metrics.start).Seconds(),
		Backend:        pqfastscan.ActiveBackend().String(),
		CPUFeatures:    pqfastscan.CPUFeatures(),
		Live:           live,
		Partitions:     sizes,
		PartitionStats: pstats,
		Endpoints:      make(map[string]EndpointStats, len(endpointNames)),
		Batch:          s.metrics.batchStats(),
		Planner:        PlannerStats{Enabled: s.cfg.Auto, Stats: plan.Snapshot()},
		Compaction: CompactionStats{
			Threshold:       s.cfg.CompactThreshold,
			Runs:            s.metrics.compactions.Load(),
			Reclaimed:       s.metrics.compactReclaimed.Load(),
			Errors:          s.metrics.compactErrors.Load(),
			LastCompactUnix: s.metrics.lastCompact.Load(),
		},
		Admission: AdmissionStats{
			MaxInFlight:     s.cfg.MaxInFlight,
			InFlight:        len(s.sem),
			Shed:            s.metrics.shed.Load(),
			QueueTimeout:    s.cfg.QueueTimeout.String(),
			DeadlineRejects: s.metrics.deadlineRejects.Load(),
		},
		Snapshot: SnapshotStats{
			Swaps:        s.metrics.swaps.Load(),
			Saves:        s.metrics.saves.Load(),
			SaveErrors:   s.metrics.saveErrors.Load(),
			LastSaveUnix: s.metrics.lastSave.Load(),
			Path:         s.cfg.SnapshotPath,
		},
		WAL:     walStats,
		BufPool: storeStats,
		Mem:     readMemStats(),
	}
	for name, em := range s.metrics.endpoints {
		st.Endpoints[name] = em.stats()
	}
	return st
}

// --- /swap, /save ------------------------------------------------------

// SwapRequest names the persisted index file to load and serve.
type SwapRequest struct {
	Path string `json:"path"`
}

// SwapResponse acknowledges a completed snapshot swap.
type SwapResponse struct {
	Swapped    bool  `json:"swapped"`
	Live       int   `json:"live"`
	Partitions []int `json:"partitions"`
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Path) == "" {
		httpError(w, http.StatusBadRequest, "path must be non-empty")
		return
	}
	// Load and validate entirely off the serving path — before taking
	// swapMu, so a slow disk read never stalls mutations or saves;
	// traffic keeps flowing on the current snapshot until the single
	// atomic store. A sharded server loads only its assigned cells.
	next, err := pqfastscan.LoadIndexCells(req.Path, s.cfg.Cells)
	if err != nil {
		httpError(w, http.StatusBadRequest, "load: "+err.Error())
		return
	}
	if err := s.attachStore(next); err != nil {
		httpError(w, http.StatusInternalServerError, "attach store: "+err.Error())
		return
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if _, err := idx.Swap(next); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if err := s.checkpointAfterSwapLocked(idx); err != nil {
		httpError(w, http.StatusInternalServerError, "swapped, but checkpoint failed: "+err.Error())
		return
	}
	s.metrics.swaps.Add(1)
	s.cfg.Logf("server: swapped in snapshot %s (%d live vectors)", req.Path, idx.Live())
	writeJSON(w, http.StatusOK, SwapResponse{
		Swapped:    true,
		Live:       idx.Live(),
		Partitions: idx.PartitionSizes(),
	})
}

// --- two-phase swap: /swap/prepare, /swap/commit, /swap/abort ----------
//
// The one-shot /swap is perfect for a single node, but a router swapping
// a whole fleet with it would expose mixed-epoch windows: shard 1 serves
// the new snapshot while shard 2 still loads it, and cross-shard merges
// combine different datasets. The two-phase protocol separates the slow
// part from the visible part. Prepare loads and validates the snapshot
// off the serving path and stages it — taking seconds, changing nothing
// observable. Commit publishes the staged index — one atomic pointer
// swap, microseconds. A router prepares everywhere, then commits
// everywhere, and the fleet's epoch skew shrinks from load time to
// commit-RPC time; any prepare failure aborts the fleet before anything
// changed.

// PrepareResponse acknowledges a staged snapshot.
type PrepareResponse struct {
	Prepared bool   `json:"prepared"`
	Path     string `json:"path"`
	Live     int    `json:"live"`
}

func (s *Server) handleSwapPrepare(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Path) == "" {
		httpError(w, http.StatusBadRequest, "path must be non-empty")
		return
	}
	// The load runs outside every lock; preparing makes /readyz report
	// not-ready so routers deprioritize a shard busy churning page cache.
	s.preparing.Add(1)
	next, err := pqfastscan.LoadIndexCells(req.Path, s.cfg.Cells)
	if err == nil {
		// Staged and serving indexes attach to the same store directory,
		// sharing one buffer pool: staging competes for the memory budget
		// instead of doubling it.
		err = s.attachStore(next)
	}
	s.preparing.Add(-1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "load: "+err.Error())
		return
	}
	// Validate now, against the serving index, so commit cannot fail for
	// a reason prepare could have caught — that is the point of the
	// protocol.
	if err := idx.CompatibleWith(next); err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.stagedMu.Lock()
	replaced := s.staged != nil
	s.staged, s.stagedPath = next, req.Path
	s.stagedMu.Unlock()
	if replaced {
		s.cfg.Logf("server: re-prepared snapshot %s (replacing previously staged)", req.Path)
	} else {
		s.cfg.Logf("server: prepared snapshot %s (%d live vectors staged)", req.Path, next.Live())
	}
	writeJSON(w, http.StatusOK, PrepareResponse{Prepared: true, Path: req.Path, Live: next.Live()})
}

// CommitResponse acknowledges a committed (published) snapshot.
type CommitResponse struct {
	Committed bool   `json:"committed"`
	Path      string `json:"path"`
	Live      int    `json:"live"`
}

func (s *Server) handleSwapCommit(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	s.stagedMu.Lock()
	next, path := s.staged, s.stagedPath
	s.staged, s.stagedPath = nil, ""
	s.stagedMu.Unlock()
	if next == nil {
		httpError(w, http.StatusConflict, "no snapshot staged: call /swap/prepare first")
		return
	}
	s.swapMu.Lock()
	_, err := idx.Swap(next)
	if err == nil {
		err = s.checkpointAfterSwapLocked(idx)
		if err != nil {
			s.swapMu.Unlock()
			httpError(w, http.StatusInternalServerError, "committed, but checkpoint failed: "+err.Error())
			return
		}
	}
	s.swapMu.Unlock()
	if err != nil {
		// Unreachable when prepare validated against the same serving
		// index, but a direct /swap can land between the two phases.
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.metrics.swaps.Add(1)
	s.cfg.Logf("server: committed snapshot %s (%d live vectors)", path, idx.Live())
	writeJSON(w, http.StatusOK, CommitResponse{Committed: true, Path: path, Live: idx.Live()})
}

// AbortResponse reports whether an abort discarded a staged snapshot.
type AbortResponse struct {
	Aborted   bool   `json:"aborted"`
	Discarded bool   `json:"discarded"`
	Path      string `json:"path,omitempty"`
}

func (s *Server) handleSwapAbort(w http.ResponseWriter, r *http.Request) {
	s.stagedMu.Lock()
	discarded := s.staged != nil
	path := s.stagedPath
	s.staged, s.stagedPath = nil, ""
	s.stagedMu.Unlock()
	if discarded {
		s.cfg.Logf("server: aborted staged snapshot %s", path)
	}
	writeJSON(w, http.StatusOK, AbortResponse{Aborted: true, Discarded: discarded, Path: path})
}

// SaveRequest optionally overrides the configured snapshot path.
type SaveRequest struct {
	Path string `json:"path,omitempty"`
}

// SaveResponse acknowledges a completed save.
type SaveResponse struct {
	Saved bool   `json:"saved"`
	Path  string `json:"path"`
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	var req SaveRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	path := req.Path
	if path == "" && s.cfg.WALDir != "" {
		// Parameterless save on a durable server is a checkpoint: it
		// persists the durable snapshot and truncates the log. An
		// explicit path is still a plain export (below), leaving the
		// durable state untouched.
		if err := s.checkpoint(); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, SaveResponse{Saved: true, Path: filepath.Join(s.cfg.WALDir, pqfastscan.SnapshotFileName)})
		return
	}
	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		httpError(w, http.StatusBadRequest, "no path given and no SnapshotPath configured")
		return
	}
	if err := s.save(path); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SaveResponse{Saved: true, Path: path})
}

// checkpointAfterSwapLocked makes a just-committed swap durable. The
// caller holds swapMu exclusively, so no mutation can be acknowledged
// between the snapshot swap and the checkpoint — the window in which a
// crash would recover pre-swap state under a log claiming post-swap
// mutations. Until the checkpoint returns, the swap is not durable;
// after it, recovery starts from the swapped-in snapshot.
func (s *Server) checkpointAfterSwapLocked(idx *pqfastscan.Index) error {
	if s.cfg.WALDir == "" {
		return nil
	}
	if err := idx.Checkpoint(); err != nil {
		s.metrics.saveErrors.Add(1)
		return err
	}
	s.metrics.saves.Add(1)
	s.metrics.lastSave.Store(time.Now().Unix())
	return nil
}

// checkpoint persists the durable snapshot and truncates the log — the
// WAL-mode counterpart of save, run by the periodic saver and by
// parameterless /save.
func (s *Server) checkpoint() error {
	idx := s.idx.Load()
	if idx == nil {
		return errors.New("server: no index loaded yet")
	}
	// Shared side of swapMu: the checkpoint's own durability lock orders
	// it against mutations; here it only must not interleave with a
	// /swap (whose handler runs its own checkpoint under the write
	// side).
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	if err := idx.Checkpoint(); err != nil {
		s.metrics.saveErrors.Add(1)
		return err
	}
	s.metrics.saves.Add(1)
	s.metrics.lastSave.Store(time.Now().Unix())
	return nil
}

func (s *Server) save(path string) error {
	idx := s.idx.Load()
	if idx == nil {
		return errors.New("server: no index loaded yet")
	}
	// Shared side of swapMu: a save serializes one immutable epoch
	// snapshot and never blocks mutations or compaction — it only must
	// not interleave with a /swap replacing the serving index wholesale.
	// Concurrent saves are safe with each other (each writes its own
	// temp file and renames atomically).
	s.swapMu.RLock()
	defer s.swapMu.RUnlock()
	if err := idx.Save(path); err != nil {
		s.metrics.saveErrors.Add(1)
		return err
	}
	s.metrics.saves.Add(1)
	s.metrics.lastSave.Store(time.Now().Unix())
	return nil
}

// --- /compact ----------------------------------------------------------

// CompactRequest triggers online tombstone reclamation. An absent or
// negative partition selects policy mode: every partition whose dead
// ratio reaches Threshold (default: the configured CompactThreshold) is
// compacted. A non-negative Partition compacts that one cell
// unconditionally.
type CompactRequest struct {
	// Partition, when >= 0, compacts exactly that cell; negative (the
	// default when the field is absent) applies the threshold policy
	// across all cells.
	Partition int `json:"partition"`
	// Threshold overrides the configured dead-ratio threshold for this
	// call (policy mode only). Zero means "use the configured value";
	// to compact any partition holding tombstones pass a tiny positive
	// value such as 1e-9.
	Threshold float64 `json:"threshold,omitempty"`
}

// CompactResponse reports the partitions compacted and the rows
// reclaimed.
type CompactResponse struct {
	Compacted []pqfastscan.CompactionResult `json:"compacted"`
	Reclaimed int                           `json:"reclaimed"`
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	idx := s.requireIndex(w)
	if idx == nil {
		return
	}
	req := CompactRequest{Partition: -1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
	}
	if req.Partition >= idx.Partitions() {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("partition must be in [0,%d) or negative for policy mode", idx.Partitions()))
		return
	}
	var results []pqfastscan.CompactionResult
	var err error
	if req.Partition >= 0 {
		s.swapMu.RLock()
		var one pqfastscan.CompactionResult
		one, err = idx.CompactPartition(req.Partition)
		s.swapMu.RUnlock()
		if err == nil && one.Reclaimed > 0 {
			results = append(results, one)
		}
	} else {
		threshold := req.Threshold
		if threshold == 0 {
			threshold = s.cfg.CompactThreshold
		}
		results, err = s.compactSweep(threshold)
	}
	if err != nil {
		// The request was well-formed (range-checked above); a failure
		// here is an index-side problem.
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	reclaimed := 0
	for _, c := range results {
		reclaimed += c.Reclaimed
	}
	s.recordCompactions(results)
	writeJSON(w, http.StatusOK, CompactResponse{Compacted: results, Reclaimed: reclaimed})
}

// compactSweep applies the dead-ratio policy one partition at a time,
// taking the shared side of swapMu per partition rather than across the
// whole sweep: compactions must not interleave with a /swap, but a
// pending swap should wait for at most one partition rebuild — holding
// the read side across the full sweep would park the swap (and, because
// a waiting writer blocks new readers, every mutation behind it) for
// the sweep's whole duration. A swap landing mid-sweep is fine: later
// iterations just re-evaluate dead ratios against the new index.
func (s *Server) compactSweep(threshold float64) ([]pqfastscan.CompactionResult, error) {
	idx := s.idx.Load()
	if idx == nil {
		// The background loop can tick before a deferred load completes;
		// nothing to compact is not an error.
		return nil, nil
	}
	var out []pqfastscan.CompactionResult
	for _, st := range idx.PartitionStats() {
		if st.Dead == 0 || st.DeadRatio < threshold {
			continue
		}
		s.swapMu.RLock()
		var (
			r   pqfastscan.CompactionResult
			err error
		)
		if st.Partition < idx.Partitions() { // the index may have been swapped mid-sweep
			r, err = idx.CompactPartition(st.Partition)
		}
		s.swapMu.RUnlock()
		if err != nil {
			return out, err
		}
		if r.Reclaimed > 0 {
			out = append(out, r)
		}
	}
	return out, nil
}

// recordCompactions folds completed compactions into the metrics.
func (s *Server) recordCompactions(results []pqfastscan.CompactionResult) {
	if len(results) == 0 {
		return
	}
	reclaimed := 0
	for _, c := range results {
		reclaimed += c.Reclaimed
	}
	s.metrics.compactions.Add(int64(len(results)))
	s.metrics.compactReclaimed.Add(int64(reclaimed))
	s.metrics.lastCompact.Store(time.Now().Unix())
	s.cfg.Logf("server: compacted %d partition(s), reclaimed %d tombstoned rows", len(results), reclaimed)
}

// compactLoop applies the dead-ratio compaction policy every
// CompactInterval: partitions past the threshold are rebuilt without
// their tombstones, off the serving path, and published under live
// traffic.
func (s *Server) compactLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			results, err := s.compactSweep(s.cfg.CompactThreshold)
			if err != nil {
				s.metrics.compactErrors.Add(1)
				s.cfg.Logf("server: background compaction: %v", err)
				continue
			}
			s.recordCompactions(results)
		case <-s.quit:
			return
		}
	}
}

// saveLoop persists the serving index every SaveInterval, so a crashed
// server restarts from a recent snapshot instead of the build artifact.
func (s *Server) saveLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.SaveInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.cfg.WALDir != "" {
				if err := s.checkpoint(); err != nil {
					s.cfg.Logf("server: periodic checkpoint: %v", err)
				} else {
					s.cfg.Logf("server: checkpointed durable snapshot in %s", s.cfg.WALDir)
				}
				continue
			}
			if err := s.save(s.cfg.SnapshotPath); err != nil {
				s.cfg.Logf("server: periodic save: %v", err)
			} else {
				s.cfg.Logf("server: saved snapshot to %s", s.cfg.SnapshotPath)
			}
		case <-s.quit:
			return
		}
	}
}
