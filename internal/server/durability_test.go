package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pqfastscan"
)

// waitReady polls /readyz until the deferred durable boot finishes.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWALRestartRecoversAckedMutations is the server-level crash
// contract: every mutation acknowledged over HTTP before the process
// goes away is served identically by the next process booted from the
// same WAL directory — including across the restart, with no /save ever
// called.
func TestWALRestartRecoversAckedMutations(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 61, 2000, 4000)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 62})

	s1, err := New(Config{Index: idx, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	waitReady(t, hs1.URL)

	vecs := gen.Generate(6)
	req := AddRequest{Vectors: make([][]float32, vecs.Rows())}
	for i := range req.Vectors {
		req.Vectors[i] = vecs.Row(i)
	}
	var added AddResponse
	if status, body := postJSON(t, hs1.URL+"/add", req, &added); status != http.StatusOK {
		t.Fatalf("add: status %d (%s)", status, body)
	}
	if status, body := postJSON(t, hs1.URL+"/delete", DeleteRequest{ID: added.IDs[1]}, nil); status != http.StatusOK {
		t.Fatalf("delete: status %d (%s)", status, body)
	}

	queries := gen.Generate(8)
	var before []SearchResponse
	for qi := 0; qi < queries.Rows(); qi++ {
		var resp SearchResponse
		if status, body := postJSON(t, hs1.URL+"/search",
			SearchRequest{Query: queries.Row(qi), K: 10, NProbe: 4}, &resp); status != http.StatusOK {
			t.Fatalf("search: status %d (%s)", status, body)
		}
		before = append(before, resp)
	}
	var st1 Stats
	if status := getJSON(t, hs1.URL+"/stats", &st1); status != http.StatusOK {
		t.Fatal("stats failed")
	}
	if st1.WAL == nil || st1.WAL.Records != 2 {
		t.Fatalf("stats wal section %+v, want 2 records (one add batch, one delete)", st1.WAL)
	}
	liveBefore := st1.Live
	hs1.Close()
	s1.Close()

	// Second process, same directory, no Index configured: boot must come
	// entirely from the recovered durable state.
	s2, err := New(Config{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer func() { hs2.Close(); s2.Close() }()
	waitReady(t, hs2.URL)

	var st2 Stats
	if status := getJSON(t, hs2.URL+"/stats", &st2); status != http.StatusOK {
		t.Fatal("stats failed after restart")
	}
	if st2.Live != liveBefore {
		t.Fatalf("recovered live %d, want %d", st2.Live, liveBefore)
	}
	for qi := range before {
		var resp SearchResponse
		if status, body := postJSON(t, hs2.URL+"/search",
			SearchRequest{Query: queries.Row(qi), K: 10, NProbe: 4}, &resp); status != http.StatusOK {
			t.Fatalf("search after restart: status %d (%s)", status, body)
		}
		if len(resp.Results) != len(before[qi].Results) {
			t.Fatalf("query %d: %d results after restart, want %d", qi, len(resp.Results), len(before[qi].Results))
		}
		for i := range resp.Results {
			if resp.Results[i] != before[qi].Results[i] {
				t.Fatalf("query %d rank %d diverged across restart: %+v vs %+v",
					qi, i, resp.Results[i], before[qi].Results[i])
			}
		}
	}
	// The pre-restart delete stays deleted, and the id is not reissued.
	if status, _ := postJSON(t, hs2.URL+"/delete", DeleteRequest{ID: added.IDs[1]}, nil); status != http.StatusNotFound {
		t.Fatalf("deleted id resurrected across restart: delete status %d, want 404", status)
	}
	var again AddResponse
	one := AddRequest{Vectors: [][]float32{gen.Generate(1).Row(0)}}
	if status, body := postJSON(t, hs2.URL+"/add", one, &again); status != http.StatusOK {
		t.Fatalf("add after restart: status %d (%s)", status, body)
	}
	for _, old := range added.IDs {
		if again.IDs[0] == old {
			t.Fatalf("restart reissued id %d", old)
		}
	}
}

// TestWALSaveIsCheckpoint: parameterless /save on a durable server
// checkpoints — persists the snapshot, rotates the log (epoch advances)
// and truncates replayed records.
func TestWALSaveIsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	idx := buildIndex(t, 71, 2000, 3000)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 72})
	s, err := New(Config{Index: idx, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() { hs.Close(); s.Close() }()
	waitReady(t, hs.URL)

	vecs := gen.Generate(4)
	req := AddRequest{Vectors: make([][]float32, vecs.Rows())}
	for i := range req.Vectors {
		req.Vectors[i] = vecs.Row(i)
	}
	if status, body := postJSON(t, hs.URL+"/add", req, nil); status != http.StatusOK {
		t.Fatalf("add: status %d (%s)", status, body)
	}

	var saved SaveResponse
	if status, body := postJSON(t, hs.URL+"/save", SaveRequest{}, &saved); status != http.StatusOK || !saved.Saved {
		t.Fatalf("save: status %d (%s)", status, body)
	}
	if !strings.HasPrefix(saved.Path, dir) {
		t.Fatalf("checkpoint path %q not under wal dir %q", saved.Path, dir)
	}
	var st Stats
	if status := getJSON(t, hs.URL+"/stats", &st); status != http.StatusOK {
		t.Fatal("stats failed")
	}
	if st.WAL == nil || st.WAL.Epoch != 2 {
		t.Fatalf("wal stats after checkpoint %+v, want epoch 2", st.WAL)
	}
	if st.Snapshot.Saves != 1 {
		t.Fatalf("saves counter %d, want 1", st.Snapshot.Saves)
	}
	// Only the fresh epoch-2 segment remains on disk.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments after checkpoint: %v (err %v), want exactly one", segs, err)
	}
}

// TestReadyzReportsRecovering: the recovery sub-state outranks warming
// on /readyz so probes can distinguish "replaying the log" (time scales
// with log length) from an index load.
func TestReadyzReportsRecovering(t *testing.T) {
	idx, _ := sharedIndex(t)
	s, hs := newTestServer(t, Config{Index: idx})
	s.recovering.Store(true)
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body[:n]), "recovering") {
		t.Fatalf("readyz while recovering: status %d body %q", resp.StatusCode, body[:n])
	}
	s.recovering.Store(false)
	if status := getJSON(t, hs.URL+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("readyz after recovery: status %d", status)
	}
}
