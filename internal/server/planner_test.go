package server

import (
	"fmt"
	"testing"

	"pqfastscan/internal/plan"
)

// --- adaptive planner over HTTP ----------------------------------------

// TestSearchRecallBitIdentity: a ?recall= planned answer must be
// bit-identical to the explicit request probing the same cell prefix —
// the property that makes the planner safe to turn on for a fleet.
func TestSearchRecallBitIdentity(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})

	for qi := 0; qi < 4; qi++ {
		q := queries.Row(qi)
		for _, recall := range []string{"0.5", "0.9", "1.0"} {
			var planned SearchResponse
			code, body := postJSON(t, hs.URL+"/search?recall="+recall,
				SearchRequest{Query: q, K: 10}, &planned)
			if code != 200 {
				t.Fatalf("planned search: %d %s", code, body)
			}
			if len(planned.Partitions) == 0 {
				t.Fatalf("planned search probed no partitions")
			}
			var fixed SearchResponse
			code, body = postJSON(t, hs.URL+"/search",
				SearchRequest{Query: q, K: 10, NProbe: len(planned.Partitions)}, &fixed)
			if code != 200 {
				t.Fatalf("fixed search: %d %s", code, body)
			}
			if fmt.Sprint(planned.Partitions) != fmt.Sprint(fixed.Partitions) {
				t.Fatalf("recall=%s probed %v, fixed nprobe probed %v",
					recall, planned.Partitions, fixed.Partitions)
			}
			if len(planned.Results) != len(fixed.Results) {
				t.Fatalf("recall=%s: %d results vs %d fixed", recall, len(planned.Results), len(fixed.Results))
			}
			for i := range fixed.Results {
				if planned.Results[i] != fixed.Results[i] {
					t.Fatalf("recall=%s result %d: planned %+v fixed %+v",
						recall, i, planned.Results[i], fixed.Results[i])
				}
			}
		}
	}
}

// TestSearchAutoParam: ?auto=1 plans a request on a non-Auto server,
// stays bit-identical to the default request, and bumps the planner
// counters; malformed ?recall= values are rejected before any work.
func TestSearchAutoParam(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})
	q := queries.Row(5)

	before := plan.Snapshot().Planned
	var auto SearchResponse
	if code, body := postJSON(t, hs.URL+"/search?auto=1", SearchRequest{Query: q, K: 10}, &auto); code != 200 {
		t.Fatalf("auto search: %d %s", code, body)
	}
	if got := plan.Snapshot().Planned; got <= before {
		t.Fatalf("planner not invoked: planned %d -> %d", before, got)
	}
	var plain SearchResponse
	if code, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: q, K: 10, NProbe: len(auto.Partitions)}, &plain); code != 200 {
		t.Fatalf("plain search: %d %s", code, body)
	}
	for i := range plain.Results {
		if auto.Results[i] != plain.Results[i] {
			t.Fatalf("auto result %d: %+v vs %+v", i, auto.Results[i], plain.Results[i])
		}
	}

	for _, bad := range []string{"0", "-1", "1.5", "nan", "x"} {
		if code, body := postJSON(t, hs.URL+"/search?recall="+bad, SearchRequest{Query: q, K: 10}, nil); code != 400 {
			t.Errorf("recall=%s accepted: %d %s", bad, code, body)
		}
	}

	// Explicit dimensions survive planning: a pinned nprobe is honored
	// even under a recall target that would widen it.
	var pinned SearchResponse
	if code, body := postJSON(t, hs.URL+"/search?recall=1.0", SearchRequest{Query: q, K: 10, NProbe: 2}, &pinned); code != 200 {
		t.Fatalf("pinned search: %d %s", code, body)
	}
	if len(pinned.Partitions) != 2 {
		t.Fatalf("pinned nprobe=2 overridden: probed %v", pinned.Partitions)
	}
}

// TestConfigAutoPlansByDefault: with Config.Auto every plain /search is
// planned, ?auto=0 opts out, and /stats reports the planner section with
// Enabled set.
func TestConfigAutoPlansByDefault(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx, Auto: true})
	q := queries.Row(6)

	before := plan.Snapshot().Planned
	if code, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: q, K: 10}, nil); code != 200 {
		t.Fatalf("search: %d %s", code, body)
	}
	mid := plan.Snapshot().Planned
	if mid <= before {
		t.Fatalf("Auto server did not plan: %d -> %d", before, mid)
	}
	if code, body := postJSON(t, hs.URL+"/search?auto=0", SearchRequest{Query: q, K: 10}, nil); code != 200 {
		t.Fatalf("opt-out search: %d %s", code, body)
	}
	if after := plan.Snapshot().Planned; after != mid {
		t.Fatalf("?auto=0 still planned: %d -> %d", mid, after)
	}

	var st Stats
	if code := getJSON(t, hs.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats: %d", code)
	}
	if !st.Planner.Enabled {
		t.Error("/stats planner.enabled false on an Auto server")
	}
	if st.Planner.Planned == 0 {
		t.Error("/stats planner.planned is zero after a planned search")
	}
	if len(st.Planner.Observations) == 0 {
		t.Error("/stats planner.observations empty after real scans")
	}
}
