package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pqfastscan"
)

// --- fixtures ----------------------------------------------------------

var (
	fixOnce    sync.Once
	fixIdx     *pqfastscan.Index // serving index (seed 11, 8000 vectors)
	fixQueries pqfastscan.Matrix
	fixGen     *pqfastscan.Dataset
	fixErr     error
)

func buildIndex(t *testing.T, seed uint64, learnN, baseN int) *pqfastscan.Index {
	t.Helper()
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: seed})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4
	idx, err := pqfastscan.Build(gen.Generate(learnN), gen.Generate(baseN), opt)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// sharedIndex returns a lazily built serving index plus a pool of
// queries. Tests that mutate or swap build their own instead.
func sharedIndex(t *testing.T) (*pqfastscan.Index, pqfastscan.Matrix) {
	t.Helper()
	fixOnce.Do(func() {
		fixGen = pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 11})
		opt := pqfastscan.DefaultBuildOptions()
		opt.Partitions = 4
		fixIdx, fixErr = pqfastscan.Build(fixGen.Generate(2000), fixGen.Generate(8000), opt)
		fixQueries = fixGen.Generate(64)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixIdx, fixQueries
}

// newTestServer starts a Server over HTTP and registers cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode, string(data)
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

// --- core API ----------------------------------------------------------

func TestSearchMatchesDirectQuery(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})

	for qi := 0; qi < 4; qi++ {
		q := queries.Row(qi)
		var got SearchResponse
		status, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: q, K: 10, NProbe: 2}, &got)
		if status != http.StatusOK {
			t.Fatalf("search status %d: %s", status, body)
		}
		want, err := idx.Search(t.Context(), q, 10, pqfastscan.WithNProbe(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
		}
		for i, r := range want.Results {
			if got.Results[i].ID != r.ID || got.Results[i].Distance != r.Distance {
				t.Fatalf("rank %d: got %+v want %+v", i, got.Results[i], r)
			}
		}
	}
}

func TestSearchValidation(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})
	q := queries.Row(0)

	cases := []struct {
		name string
		req  SearchRequest
	}{
		{"short query", SearchRequest{Query: q[:10], K: 5}},
		{"bad k", SearchRequest{Query: q, K: -2}},
		{"huge k", SearchRequest{Query: q, K: 1 << 20}},
		{"bad nprobe", SearchRequest{Query: q, K: 5, NProbe: 99}},
		{"bad kernel", SearchRequest{Query: q, K: 5, Kernel: "warp"}},
	}
	for _, c := range cases {
		if status, body := postJSON(t, hs.URL+"/search", c.req, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, status, body)
		}
	}
}

func TestAddDeleteOverHTTP(t *testing.T) {
	idx := buildIndex(t, 23, 2000, 4000)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 24})
	_, hs := newTestServer(t, Config{Index: idx})

	liveBefore := idx.Live()
	vecs := gen.Generate(3)
	var added AddResponse
	req := AddRequest{Vectors: make([][]float32, vecs.Rows())}
	for i := range req.Vectors {
		req.Vectors[i] = vecs.Row(i)
	}
	if status, body := postJSON(t, hs.URL+"/add", req, &added); status != http.StatusOK {
		t.Fatalf("add status %d: %s", status, body)
	}
	if len(added.IDs) != 3 || idx.Live() != liveBefore+3 {
		t.Fatalf("added ids %v, live %d (was %d)", added.IDs, idx.Live(), liveBefore)
	}

	// An added vector must be findable as its own nearest neighbor.
	var found SearchResponse
	if status, body := postJSON(t, hs.URL+"/search",
		SearchRequest{Query: req.Vectors[0], K: 1, NProbe: 4}, &found); status != http.StatusOK {
		t.Fatalf("search status %d: %s", status, body)
	}
	if len(found.Results) != 1 || found.Results[0].ID != added.IDs[0] {
		t.Fatalf("nearest neighbor of added vector: %+v, want id %d", found.Results, added.IDs[0])
	}

	var del DeleteResponse
	if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: added.IDs[0]}, &del); status != http.StatusOK || !del.Deleted {
		t.Fatalf("delete status %d deleted %v: %s", status, del.Deleted, body)
	}
	if status, _ := postJSON(t, hs.URL+"/search",
		SearchRequest{Query: req.Vectors[0], K: 1, NProbe: 4}, &found); status != http.StatusOK {
		t.Fatal("search after delete failed")
	}
	if len(found.Results) == 1 && found.Results[0].ID == added.IDs[0] {
		t.Fatalf("deleted id %d still returned", added.IDs[0])
	}
}

func TestHealthzAndStats(t *testing.T) {
	idx, _ := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})

	var health struct {
		Status  string `json:"status"`
		Live    int    `json:"live"`
		Backend string `json:"backend"`
	}
	if status := getJSON(t, hs.URL+"/healthz", &health); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if health.Status != "ok" || health.Live != idx.Live() {
		t.Fatalf("healthz %+v, live want %d", health, idx.Live())
	}
	if health.Backend != pqfastscan.ActiveBackend().String() {
		t.Fatalf("healthz backend %q, want %q (deployments verify the asm path through this field)",
			health.Backend, pqfastscan.ActiveBackend())
	}

	var st Stats
	if status := getJSON(t, hs.URL+"/stats", &st); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	if st.Backend != pqfastscan.ActiveBackend().String() {
		t.Fatalf("stats backend %q, want %q", st.Backend, pqfastscan.ActiveBackend())
	}
	if st.Endpoints["/healthz"].Requests != 1 {
		t.Fatalf("healthz request count %d, want 1", st.Endpoints["/healthz"].Requests)
	}
	if st.Admission.MaxInFlight <= 0 {
		t.Fatalf("admission defaults not applied: %+v", st.Admission)
	}
	if len(st.Partitions) != 4 {
		t.Fatalf("partitions %v", st.Partitions)
	}
}

// --- acceptance: coalescing -------------------------------------------

// TestCoalescing demonstrates dynamic micro-batching: N concurrent
// identical-shape /search requests are serviced by fewer than N
// SearchBatch calls, with every request answered correctly.
func TestCoalescing(t *testing.T) {
	idx, queries := sharedIndex(t)
	const n = 32
	s, hs := newTestServer(t, Config{
		Index:       idx,
		BatchWindow: 25 * time.Millisecond,
		MaxBatch:    n,
		MaxInFlight: 2 * n,
	})

	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries.Row(i % queries.Rows())
			var got SearchResponse
			status, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: q, K: 5}, &got)
			if status != http.StatusOK || len(got.Results) != 5 {
				t.Logf("request %d: status %d body %s", i, status, body)
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d concurrent searches failed", failures.Load(), n)
	}
	st := s.StatsSnapshot()
	if st.Batch.Queries != n {
		t.Fatalf("batch served %d queries, want %d", st.Batch.Queries, n)
	}
	if st.Batch.Calls >= n {
		t.Fatalf("coalescing ineffective: %d SearchBatch calls for %d requests", st.Batch.Calls, n)
	}
	if st.Batch.MaxWidth < 2 {
		t.Fatalf("max batch width %d, want >= 2", st.Batch.MaxWidth)
	}
	t.Logf("coalesced %d requests into %d SearchBatch calls (max width %d, avg %.1f)",
		n, st.Batch.Calls, st.Batch.MaxWidth, st.Batch.AvgWidth)
}

// TestBatchKeyGrouping verifies that requests with different search
// parameters never share a SearchBatch call yet all come back correct.
func TestBatchKeyGrouping(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{
		Index:       idx,
		BatchWindow: 25 * time.Millisecond,
		MaxBatch:    16,
	})

	var wg sync.WaitGroup
	results := make([]SearchResponse, 8)
	status := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 3 + i%3 // three distinct batch keys
			status[i], _ = postJSON(t, hs.URL+"/search",
				SearchRequest{Query: queries.Row(i), K: k}, &results[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if status[i] != http.StatusOK {
			t.Fatalf("request %d status %d", i, status[i])
		}
		if want := 3 + i%3; len(results[i].Results) != want {
			t.Fatalf("request %d got %d results, want %d", i, len(results[i].Results), want)
		}
	}
}

// --- acceptance: load shedding ----------------------------------------

// TestLoadShedding saturates a deliberately tiny admission budget and
// asserts overload degrades by shedding: surplus requests get 429
// quickly while every accepted request completes with bounded latency.
func TestLoadShedding(t *testing.T) {
	idx, queries := sharedIndex(t)
	const n = 24
	s, hs := newTestServer(t, Config{
		Index:        idx,
		BatchWindow:  60 * time.Millisecond, // the admitted request parks in the window
		MaxBatch:     64,
		MaxInFlight:  1,
		QueueTimeout: 2 * time.Millisecond,
	})

	var wg sync.WaitGroup
	var ok, shed, other atomic.Int64
	var maxOKLatency atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			st, _ := postJSON(t, hs.URL+"/search",
				SearchRequest{Query: queries.Row(i % queries.Rows()), K: 5}, nil)
			lat := time.Since(start)
			switch st {
			case http.StatusOK:
				ok.Add(1)
				for {
					cur := maxOKLatency.Load()
					if int64(lat) <= cur || maxOKLatency.CompareAndSwap(cur, int64(lat)) {
						break
					}
				}
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("unexpected statuses under overload (ok=%d shed=%d other=%d)",
			ok.Load(), shed.Load(), other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request was admitted")
	}
	if shed.Load() == 0 {
		t.Fatal("no request was shed despite MaxInFlight=1 saturation")
	}
	// Accepted requests ride one batch window plus the scan; an order of
	// magnitude of headroom keeps this robust on slow CI machines while
	// still proving latency did not collapse into the queue.
	if lat := time.Duration(maxOKLatency.Load()); lat > 2*time.Second {
		t.Fatalf("accepted request latency %v, want bounded", lat)
	}
	st := s.StatsSnapshot()
	if st.Admission.Shed != shed.Load() {
		t.Fatalf("shed counter %d, observed %d", st.Admission.Shed, shed.Load())
	}
	t.Logf("shed %d of %d requests; slowest accepted %v", shed.Load(), n, time.Duration(maxOKLatency.Load()))
}

// --- acceptance: hot snapshot swap ------------------------------------

// TestHotSwapUnderTraffic streams queries while the serving snapshot is
// swapped for a different index loaded from disk: zero requests may
// fail, and after the swap searches are answered by the new snapshot.
func TestHotSwapUnderTraffic(t *testing.T) {
	idxA := buildIndex(t, 31, 2000, 5000)
	idxB := buildIndex(t, 32, 2000, 3000)
	snap := filepath.Join(t.TempDir(), "next.idx")
	if err := idxB.Save(snap); err != nil {
		t.Fatal(err)
	}
	liveB := idxB.Live()

	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 33})
	queries := gen.Generate(16)
	s, hs := newTestServer(t, Config{
		Index:       idxA,
		BatchWindow: time.Millisecond,
		MaxInFlight: 64,
	})

	stop := make(chan struct{})
	var failed atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var resp SearchResponse
				status, body := postJSON(t, hs.URL+"/search",
					SearchRequest{Query: queries.Row((w*7 + i) % queries.Rows()), K: 5}, &resp)
				if status != http.StatusOK || len(resp.Results) == 0 {
					t.Logf("worker %d query %d: status %d body %s", w, i, status, body)
					failed.Add(1)
				}
				served.Add(1)
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond) // let queries flow on snapshot A
	var swapped SwapResponse
	status, body := postJSON(t, hs.URL+"/swap", SwapRequest{Path: snap}, &swapped)
	if status != http.StatusOK || !swapped.Swapped {
		close(stop)
		wg.Wait()
		t.Fatalf("swap status %d: %s", status, body)
	}
	time.Sleep(50 * time.Millisecond) // keep querying on snapshot B
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests failed across the swap", failed.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic flowed during the swap window")
	}
	if got := s.Index().Live(); got != liveB {
		t.Fatalf("post-swap live count %d, want snapshot B's %d", got, liveB)
	}
	st := s.StatsSnapshot()
	if st.Snapshot.Swaps != 1 {
		t.Fatalf("swap counter %d, want 1", st.Snapshot.Swaps)
	}
	t.Logf("served %d queries across the swap with zero failures", served.Load())
}

func TestSwapRejectsIncompatibleAndMissing(t *testing.T) {
	idx, _ := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})

	if status, _ := postJSON(t, hs.URL+"/swap", SwapRequest{Path: "/does/not/exist.idx"}, nil); status != http.StatusBadRequest {
		t.Fatalf("missing snapshot: status %d, want 400", status)
	}

	// A 64-dimensional index is not query-compatible with the serving
	// 128-dimensional one; the swap must refuse and keep serving.
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 41, Dim: 64})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 2
	other, err := pqfastscan.Build(gen.Generate(1500), gen.Generate(1500), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "incompatible.idx")
	if err := other.Save(snap); err != nil {
		t.Fatal(err)
	}
	if status, body := postJSON(t, hs.URL+"/swap", SwapRequest{Path: snap}, nil); status != http.StatusConflict {
		t.Fatalf("incompatible snapshot: status %d, want 409 (%s)", status, body)
	}
	if idx.Dim() != 128 {
		t.Fatal("serving index replaced by incompatible snapshot")
	}
}

// --- snapshot save -----------------------------------------------------

func TestSaveEndpointAndPeriodicSave(t *testing.T) {
	idx := buildIndex(t, 51, 2000, 3000)
	snap := filepath.Join(t.TempDir(), "serving.idx")
	s, hs := newTestServer(t, Config{
		Index:        idx,
		SnapshotPath: snap,
		SaveInterval: 30 * time.Millisecond,
	})

	var saved SaveResponse
	if status, body := postJSON(t, hs.URL+"/save", SaveRequest{}, &saved); status != http.StatusOK || !saved.Saved {
		t.Fatalf("save status %d: %s", status, body)
	}
	reloaded, err := pqfastscan.LoadIndex(saved.Path)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Live() != idx.Live() {
		t.Fatalf("reloaded snapshot live %d, want %d", reloaded.Live(), idx.Live())
	}

	// The background saver must tick at least once more.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.StatsSnapshot().Snapshot.Saves >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("periodic saver never ran (saves=%d)", s.StatsSnapshot().Snapshot.Saves)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- shutdown ----------------------------------------------------------

// TestCloseCompletesInFlight verifies shutdown serves already-submitted
// searches instead of stranding their handlers.
func TestCloseCompletesInFlight(t *testing.T) {
	idx, queries := sharedIndex(t)
	s, err := New(Config{Index: idx, BatchWindow: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	const n = 6
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postJSON(t, hs.URL+"/search",
				SearchRequest{Query: queries.Row(i), K: 3}, nil)
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // requests are parked in the window
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
	for i, st := range statuses {
		if st != http.StatusOK && st != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
}

func TestNewRequiresIndex(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil index")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	idx, _ := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx})
	resp, err := http.Get(hs.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search status %d, want 405", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	idx, queries := sharedIndex(t)
	_, hs := newTestServer(t, Config{Index: idx, MaxBodyBytes: 256})
	status, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(0), K: 5}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400 (%s)", status, body)
	}
}

// --- delete 404, compaction --------------------------------------------

// TestDeleteNotFoundIs404: the typed ErrNotFound travels index → façade
// → HTTP as a 404, for never-assigned and double-deleted ids alike.
func TestDeleteNotFoundIs404(t *testing.T) {
	idx := buildIndex(t, 29, 2000, 4000)
	_, hs := newTestServer(t, Config{Index: idx})

	if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: 1 << 40}, nil); status != http.StatusNotFound {
		t.Fatalf("never-assigned id: status %d, want 404 (%s)", status, body)
	}
	var del DeleteResponse
	if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: 7}, &del); status != http.StatusOK || !del.Deleted {
		t.Fatalf("live id: status %d deleted %v (%s)", status, del.Deleted, body)
	}
	if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: 7}, nil); status != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404 (%s)", status, body)
	}
}

// TestCompactEndpoint: /compact reclaims tombstones online, bumps
// partition epochs in /stats, and leaves search answers unchanged.
func TestCompactEndpoint(t *testing.T) {
	idx := buildIndex(t, 31, 2000, 6000)
	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 31})
	gen.Generate(2000 + 6000) // advance past learn+base
	queries := gen.Generate(4)
	_, hs := newTestServer(t, Config{Index: idx})

	for id := int64(0); id < 3000; id += 2 {
		if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: id}, nil); status != http.StatusOK {
			t.Fatalf("delete %d: status %d (%s)", id, status, body)
		}
	}
	var before Stats
	if status := getJSON(t, hs.URL+"/stats", &before); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	deadBefore := 0
	for _, ps := range before.PartitionStats {
		deadBefore += ps.Dead
	}
	if deadBefore != 1500 {
		t.Fatalf("stats report %d tombstones before compaction, want 1500", deadBefore)
	}
	var wantAnswers []SearchResponse
	for qi := 0; qi < queries.Rows(); qi++ {
		var resp SearchResponse
		if status, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(qi), K: 15, NProbe: 4}, &resp); status != http.StatusOK {
			t.Fatalf("search: status %d (%s)", status, body)
		}
		wantAnswers = append(wantAnswers, resp)
	}

	var comp CompactResponse
	if status, body := postJSON(t, hs.URL+"/compact", CompactRequest{Partition: -1, Threshold: 1e-9}, &comp); status != http.StatusOK {
		t.Fatalf("compact: status %d (%s)", status, body)
	}
	if comp.Reclaimed != 1500 {
		t.Fatalf("compaction reclaimed %d rows, want 1500", comp.Reclaimed)
	}

	var after Stats
	if status := getJSON(t, hs.URL+"/stats", &after); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	for i, ps := range after.PartitionStats {
		if ps.Dead != 0 {
			t.Fatalf("partition %d still reports %d tombstones", i, ps.Dead)
		}
		if before.PartitionStats[i].Dead > 0 && ps.Epoch <= before.PartitionStats[i].Epoch {
			t.Fatalf("partition %d epoch did not advance across compaction", i)
		}
	}
	if after.Compaction.Runs != int64(len(comp.Compacted)) || after.Compaction.Reclaimed != 1500 {
		t.Fatalf("compaction stats %+v, want runs=%d reclaimed=1500", after.Compaction, len(comp.Compacted))
	}

	for qi := 0; qi < queries.Rows(); qi++ {
		var resp SearchResponse
		if status, body := postJSON(t, hs.URL+"/search", SearchRequest{Query: queries.Row(qi), K: 15, NProbe: 4}, &resp); status != http.StatusOK {
			t.Fatalf("search after compact: status %d (%s)", status, body)
		}
		if len(resp.Results) != len(wantAnswers[qi].Results) {
			t.Fatalf("query %d: %d results after compaction, want %d", qi, len(resp.Results), len(wantAnswers[qi].Results))
		}
		for i := range resp.Results {
			if resp.Results[i] != wantAnswers[qi].Results[i] {
				t.Fatalf("query %d rank %d changed across compaction", qi, i)
			}
		}
	}

	// Single-partition mode: nothing left to reclaim.
	var one CompactResponse
	if status, body := postJSON(t, hs.URL+"/compact", CompactRequest{Partition: 0}, &one); status != http.StatusOK || one.Reclaimed != 0 {
		t.Fatalf("single-partition compact: status %d reclaimed %d (%s)", status, one.Reclaimed, body)
	}
	if status, _ := postJSON(t, hs.URL+"/compact", CompactRequest{Partition: 99}, nil); status != http.StatusBadRequest {
		t.Fatalf("out-of-range partition: status %d, want 400", status)
	}
}

// TestBackgroundCompactionPolicy: with CompactInterval set, partitions
// past the dead-ratio threshold are compacted without any endpoint call.
func TestBackgroundCompactionPolicy(t *testing.T) {
	idx := buildIndex(t, 37, 2000, 4000)
	_, hs := newTestServer(t, Config{
		Index:            idx,
		CompactInterval:  10 * time.Millisecond,
		CompactThreshold: 0.2,
	})
	for id := int64(0); id < 4000; id += 2 {
		if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: id}, nil); status != http.StatusOK {
			t.Fatalf("delete %d: status %d (%s)", id, status, body)
		}
	}
	// The policy's steady state: every partition is back under the
	// threshold (residual tombstones below 20% are by design left for
	// the next crossing) and at least one compaction ran.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		if status := getJSON(t, hs.URL+"/stats", &st); status != http.StatusOK {
			t.Fatalf("stats status %d", status)
		}
		settled := st.Compaction.Runs > 0 && st.Compaction.Reclaimed > 0
		for _, ps := range st.PartitionStats {
			if ps.DeadRatio >= 0.2 {
				settled = false
			}
		}
		if settled {
			if st.Live != 2000 {
				t.Fatalf("live %d after background compaction, want 2000", st.Live)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never settled: %+v", st.Compaction)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSaveDuringActiveCompaction: /save images taken while /compact and
// /delete republish partitions must every one load cleanly and carry a
// consistent snapshot.
func TestSaveDuringActiveCompaction(t *testing.T) {
	idx := buildIndex(t, 41, 2000, 6000)
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{Index: idx})

	var wg sync.WaitGroup
	var firstErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(0); id < 3000; id++ {
			if status, body := postJSON(t, hs.URL+"/delete", DeleteRequest{ID: id}, nil); status != http.StatusOK {
				firstErr.CompareAndSwap(nil, errSaveSoak("delete "+body))
				return
			}
			if id%200 == 0 {
				if status, body := postJSON(t, hs.URL+"/compact", CompactRequest{Partition: -1, Threshold: 1e-9}, nil); status != http.StatusOK {
					firstErr.CompareAndSwap(nil, errSaveSoak("compact "+body))
					return
				}
			}
		}
	}()
	for i := 0; i < 8; i++ {
		path := filepath.Join(dir, "snap.pqfsidx")
		var sv SaveResponse
		if status, body := postJSON(t, hs.URL+"/save", SaveRequest{Path: path}, &sv); status != http.StatusOK || !sv.Saved {
			t.Fatalf("save %d: status %d (%s)", i, status, body)
		}
		loaded, err := pqfastscan.LoadIndex(path)
		if err != nil {
			t.Fatalf("save %d produced an unloadable image: %v", i, err)
		}
		total := 0
		for _, ps := range loaded.PartitionStats() {
			total += ps.Live
		}
		if total != loaded.Live() {
			t.Fatalf("save %d: inconsistent image (live %d vs partition sum %d)", i, loaded.Live(), total)
		}
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
}

type errSaveSoak string

func (e errSaveSoak) Error() string { return string(e) }
