// Package smalltab generalizes PQ Fast Scan's register-resident small
// tables to dictionary-compressed database columns, implementing the
// paper's §6 discussion:
//
//	"In the case of dictionary-based compression (or quantization), the
//	database stores compact codes. [...] For top-k queries, it is
//	possible to build small tables enabling computation of lower or
//	upper bounds. [...] To compute upper bounds instead of lower bounds,
//	maximum tables can be used instead of minimum tables. For
//	approximate aggregate queries (e.g., approximate mean), tables of
//	aggregates (e.g., tables of means) can be used instead of minimum
//	tables."
//
// A column of one-byte dictionary codes is scanned 16 rows at a time: the
// high nibble of each code selects one of 16 dictionary portions, and a
// single in-register pshufb fetches the portion's precomputed aggregate
// (min, max or mean), quantized to 8 bits. The resulting per-row values
// are guaranteed bounds (min/max variants) or estimates (mean variant) of
// the decoded column values.
package smalltab

import (
	"fmt"
	"math"

	"pqfastscan/internal/simd"
)

// DictSize is the dictionary cardinality this package supports: one-byte
// codes, 16 portions of 16 entries, exactly the PQ 8×8 geometry.
const DictSize = 256

// Kind selects the per-portion aggregate held in a small table.
type Kind int

const (
	// Min tables yield lower bounds (top-k smallest pruning).
	Min Kind = iota
	// Max tables yield upper bounds (top-k largest pruning).
	Max
	// Mean tables yield estimates for approximate aggregation.
	Mean
)

// String names the aggregate kind.
func (k Kind) String() string {
	switch k {
	case Min:
		return "min"
	case Max:
		return "max"
	case Mean:
		return "mean"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Table is a 16-entry small table over a 256-entry dictionary, held in
// (a software model of) one SIMD register, plus the affine dequantization
// parameters.
type Table struct {
	Kind Kind
	Reg  simd.Reg
	Lo   float64 // value represented by bin 0
	Step float64 // value per bin
}

// Build constructs the small table of the requested kind for dict.
// Quantization direction preserves the bound property: Min tables round
// down (true value >= dequantized bin), Max tables round up (true value
// <= dequantized bin), Mean tables round to nearest.
func Build(dict []float32, kind Kind) (Table, error) {
	if len(dict) != DictSize {
		return Table{}, fmt.Errorf("smalltab: dictionary has %d entries, want %d", len(dict), DictSize)
	}
	// Portion aggregates.
	var agg [16]float64
	for h := 0; h < 16; h++ {
		portion := dict[h*16 : h*16+16]
		switch kind {
		case Min:
			m := float64(portion[0])
			for _, v := range portion[1:] {
				if float64(v) < m {
					m = float64(v)
				}
			}
			agg[h] = m
		case Max:
			m := float64(portion[0])
			for _, v := range portion[1:] {
				if float64(v) > m {
					m = float64(v)
				}
			}
			agg[h] = m
		case Mean:
			s := 0.0
			for _, v := range portion {
				s += float64(v)
			}
			agg[h] = s / 16
		default:
			return Table{}, fmt.Errorf("smalltab: unknown kind %v", kind)
		}
	}
	lo, hi := agg[0], agg[0]
	for _, v := range agg[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	step := (hi - lo) / 255
	if step == 0 {
		step = 1
	}
	t := Table{Kind: kind, Lo: lo, Step: step}
	for h := 0; h < 16; h++ {
		x := (agg[h] - lo) / step
		var bin int
		switch kind {
		case Min:
			bin = int(math.Floor(x))
			// Guarantee agg >= lo + bin*step against rounding.
			for bin > 0 && lo+float64(bin)*step > agg[h] {
				bin--
			}
		case Max:
			bin = int(math.Ceil(x))
			for bin < 255 && lo+float64(bin)*step < agg[h] {
				bin++
			}
		case Mean:
			bin = int(math.Floor(x + 0.5))
		}
		if bin < 0 {
			bin = 0
		}
		if bin > 255 {
			bin = 255
		}
		t.Reg[h] = uint8(bin)
	}
	return t, nil
}

// Dequantize converts a table bin back to a column value.
func (t Table) Dequantize(bin uint8) float64 {
	return t.Lo + float64(bin)*t.Step
}

// Lookup16 evaluates the table over 16 dictionary codes at once: one
// nibble extraction (psrlw+pand) followed by one pshufb, exactly the
// Fast Scan inner-loop idiom. The returned register holds the quantized
// per-row aggregates.
func (t Table) Lookup16(codes []uint8) simd.Reg {
	c := simd.Load(codes)
	hi := simd.Pand(simd.Psrlw4(c), simd.LowNibbleMask())
	return simd.Pshufb(t.Reg, hi)
}

// BoundRows dequantizes Lookup16 for 16 rows into dst. For Min tables
// every dst value is <= the decoded row value; for Max tables it is >=;
// for Mean tables it is the portion mean.
func (t Table) BoundRows(codes []uint8, dst *[16]float64) {
	r := t.Lookup16(codes)
	for i := 0; i < 16; i++ {
		dst[i] = t.Dequantize(r[i])
	}
}

// ApproxSum estimates the sum of a compressed column using a Mean table:
// rows are processed 16 at a time entirely through in-register lookups.
// The estimate's error is bounded by the within-portion spread; for
// dictionaries with sorted (order-preserving) codes it is typically well
// under 1 %.
func ApproxSum(t Table, codes []uint8) (float64, error) {
	if t.Kind != Mean {
		return 0, fmt.Errorf("smalltab: ApproxSum requires a Mean table, got %v", t.Kind)
	}
	sum := 0.0
	i := 0
	for ; i+16 <= len(codes); i += 16 {
		r := t.Lookup16(codes[i:])
		for lane := 0; lane < 16; lane++ {
			sum += t.Dequantize(r[lane])
		}
	}
	for ; i < len(codes); i++ {
		sum += t.Dequantize(t.Reg[codes[i]>>4])
	}
	return sum, nil
}

// TopKSmallest returns the indexes of the k smallest decoded values of a
// compressed column, pruning dictionary decodes with a Min small table —
// the §6 top-k query pattern. It returns the selected row indexes (in
// ascending value order) and the number of rows whose decode was skipped.
func TopKSmallest(dict []float32, codes []uint8, k int) (rows []int, prunedRows int, err error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("smalltab: k must be positive")
	}
	t, err := Build(dict, Min)
	if err != nil {
		return nil, 0, err
	}
	type cand struct {
		row int
		val float32
	}
	best := make([]cand, 0, k)
	worst := float32(math.Inf(1))
	insert := func(row int, val float32) {
		pos := len(best)
		if pos < k {
			best = append(best, cand{})
		} else if val >= worst {
			return
		} else {
			pos = k - 1
		}
		for pos > 0 && best[pos-1].val > val {
			best[pos] = best[pos-1]
			pos--
		}
		best[pos] = cand{row: row, val: val}
		if len(best) == k {
			worst = best[k-1].val
		}
	}
	i := 0
	for ; i+16 <= len(codes); i += 16 {
		lb := t.Lookup16(codes[i:])
		for lane := 0; lane < 16; lane++ {
			if len(best) == k && t.Dequantize(lb[lane]) > float64(worst) {
				prunedRows++
				continue
			}
			insert(i+lane, dict[codes[i+lane]])
		}
	}
	for ; i < len(codes); i++ {
		insert(i, dict[codes[i]])
	}
	rows = make([]int, len(best))
	for j, c := range best {
		rows[j] = c.row
	}
	return rows, prunedRows, nil
}
