package smalltab

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pqfastscan/internal/rng"
)

func randomDict(seed uint64, spread float64) []float32 {
	r := rng.New(seed)
	dict := make([]float32, DictSize)
	for i := range dict {
		dict[i] = float32(r.Float64() * spread)
	}
	return dict
}

func sortedDict(seed uint64) []float32 {
	d := randomDict(seed, 1000)
	sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
	return d
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(make([]float32, 100), Min); err == nil {
		t.Error("short dictionary accepted")
	}
	if _, err := Build(make([]float32, DictSize), Kind(9)); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestMinTableIsLowerBound / TestMaxTableIsUpperBound: the §6 bound
// property for every dictionary code, via the SIMD lookup path.
func TestMinTableIsLowerBound(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		dict := randomDict(uint64(seed), 500)
		tab, err := Build(dict, Min)
		if err != nil {
			return false
		}
		codes := make([]uint8, 256)
		for i := range codes {
			codes[i] = uint8(i)
		}
		var bound [16]float64
		for i := 0; i < 256; i += 16 {
			tab.BoundRows(codes[i:], &bound)
			for lane := 0; lane < 16; lane++ {
				if bound[lane] > float64(dict[i+lane])+1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTableIsUpperBound(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		dict := randomDict(uint64(seed), 500)
		tab, err := Build(dict, Max)
		if err != nil {
			return false
		}
		codes := make([]uint8, 256)
		for i := range codes {
			codes[i] = uint8(i)
		}
		var bound [16]float64
		for i := 0; i < 256; i += 16 {
			tab.BoundRows(codes[i:], &bound)
			for lane := 0; lane < 16; lane++ {
				if bound[lane] < float64(dict[i+lane])-1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Min: "min", Max: "max", Mean: "mean"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestConstantDictionary(t *testing.T) {
	dict := make([]float32, DictSize)
	for i := range dict {
		dict[i] = 7
	}
	for _, kind := range []Kind{Min, Max, Mean} {
		tab, err := Build(dict, kind)
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.Dequantize(tab.Reg[3]); got != 7 {
			t.Errorf("%v table over constant dict dequantizes to %v", kind, got)
		}
	}
}

// TestApproxSumAccuracy: with a sorted dictionary (order-preserving
// compression) the mean-table estimate is close to the exact sum.
func TestApproxSumAccuracy(t *testing.T) {
	dict := sortedDict(3)
	tab, err := Build(dict, Mean)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	codes := make([]uint8, 100000)
	for i := range codes {
		codes[i] = uint8(r.Intn(256))
	}
	exact := 0.0
	for _, c := range codes {
		exact += float64(dict[c])
	}
	approx, err := ApproxSum(tab, codes)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(approx-exact) / exact
	if relErr > 0.02 {
		t.Errorf("approximate sum off by %.2f%%", 100*relErr)
	}
}

func TestApproxSumRequiresMean(t *testing.T) {
	tab, err := Build(sortedDict(5), Min)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApproxSum(tab, make([]uint8, 32)); err == nil {
		t.Error("ApproxSum accepted a Min table")
	}
}

func TestApproxSumTail(t *testing.T) {
	// Length not a multiple of 16 exercises the scalar tail.
	dict := sortedDict(7)
	tab, err := Build(dict, Mean)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]uint8, 23)
	for i := range codes {
		codes[i] = uint8(i * 11)
	}
	got, err := ApproxSum(tab, codes)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, c := range codes {
		want += tab.Dequantize(tab.Reg[c>>4])
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("tail handling: got %v want %v", got, want)
	}
}

// TestTopKSmallestExact: the pruned scan returns exactly the rows a full
// decode would, on sorted and unsorted dictionaries.
func TestTopKSmallestExact(t *testing.T) {
	for _, sorted := range []bool{true, false} {
		var dict []float32
		if sorted {
			dict = sortedDict(13)
		} else {
			dict = randomDict(13, 1000)
		}
		r := rng.New(17)
		codes := make([]uint8, 50000)
		for i := range codes {
			u := r.Float64()
			codes[i] = uint8(u * u * 255)
		}
		const k = 25
		rows, pruned, err := TopKSmallest(dict, codes, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != k {
			t.Fatalf("returned %d rows", len(rows))
		}
		// Reference by full decode.
		vals := make([]float32, len(codes))
		for i, c := range codes {
			vals[i] = dict[c]
		}
		ref := make([]int, len(codes))
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool { return vals[ref[a]] < vals[ref[b]] })
		for i := 0; i < k; i++ {
			if vals[rows[i]] != vals[ref[i]] {
				t.Fatalf("sorted=%v rank %d: value %v, want %v", sorted, i, vals[rows[i]], vals[ref[i]])
			}
		}
		if sorted && pruned == 0 {
			t.Error("sorted dictionary should enable pruning")
		}
	}
}

func TestTopKSmallestErrors(t *testing.T) {
	if _, _, err := TopKSmallest(sortedDict(1), make([]uint8, 10), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := TopKSmallest(make([]float32, 3), make([]uint8, 10), 1); err == nil {
		t.Error("short dictionary accepted")
	}
}

// TestLookup16MatchesScalar: the SIMD path equals the scalar definition.
func TestLookup16MatchesScalar(t *testing.T) {
	dict := randomDict(21, 300)
	tab, err := Build(dict, Min)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	codes := make([]uint8, 16)
	for trial := 0; trial < 100; trial++ {
		for i := range codes {
			codes[i] = uint8(r.Intn(256))
		}
		got := tab.Lookup16(codes)
		for lane := 0; lane < 16; lane++ {
			if got[lane] != tab.Reg[codes[lane]>>4] {
				t.Fatalf("lane %d: %d != %d", lane, got[lane], tab.Reg[codes[lane]>>4])
			}
		}
	}
}
