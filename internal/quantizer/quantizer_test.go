package quantizer

import (
	"math"
	"testing"

	"pqfastscan/internal/rng"
	"pqfastscan/internal/vec"
)

func randomData(n, dim int, seed uint64) vec.Matrix {
	r := rng.New(seed)
	m := vec.NewMatrix(n, dim)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64() * 10)
	}
	return m
}

func trainSmall(t *testing.T, seed uint64) (*ProductQuantizer, vec.Matrix) {
	t.Helper()
	data := randomData(2000, 32, seed)
	pq, err := Train(data, Config{M: 8, Bits: 8}, TrainOptions{MaxIter: 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return pq, data
}

func TestConfigProperties(t *testing.T) {
	cases := []struct {
		cfg        Config
		kstar      int
		tableBytes int
		str        string
	}{
		{PQ16x4, 16, 16 * 16 * 4, "PQ 16x4"},
		{PQ8x8, 256, 8 * 256 * 4, "PQ 8x8"},
		{PQ4x16, 65536, 4 * 65536 * 4, "PQ 4x16"},
	}
	for _, c := range cases {
		if c.cfg.KStar() != c.kstar {
			t.Errorf("%v KStar = %d, want %d", c.cfg, c.cfg.KStar(), c.kstar)
		}
		if c.cfg.TableBytes() != c.tableBytes {
			t.Errorf("%v TableBytes = %d, want %d", c.cfg, c.cfg.TableBytes(), c.tableBytes)
		}
		if c.cfg.CodeBits() != 64 {
			t.Errorf("%v CodeBits = %d, want 64", c.cfg, c.cfg.CodeBits())
		}
		if c.cfg.String() != c.str {
			t.Errorf("String() = %q, want %q", c.cfg.String(), c.str)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	data := randomData(100, 30, 1)
	if _, err := Train(data, Config{M: 8, Bits: 8}, TrainOptions{}); err == nil {
		t.Error("dim 30 not divisible by m=8 accepted")
	}
	if _, err := Train(data, Config{M: 0, Bits: 8}, TrainOptions{}); err == nil {
		t.Error("m=0 accepted")
	}
	small := randomData(10, 32, 1)
	if _, err := Train(small, Config{M: 8, Bits: 8}, TrainOptions{}); err == nil {
		t.Error("training set smaller than k* accepted")
	}
}

// TestADCEqualsDecodedDistance: the ADC approximation of Equation 1 is by
// construction the exact distance between the query and the *decoded*
// database vector.
func TestADCEqualsDecodedDistance(t *testing.T) {
	pq, data := trainSmall(t, 2)
	query := randomData(1, 32, 99).Row(0)
	tables := pq.DistanceTables(query)
	code := make([]uint8, pq.M)
	recon := make([]float32, pq.Dim)
	for i := 0; i < 50; i++ {
		pq.Encode(data.Row(i), code)
		pq.Decode(code, recon)
		adc := float64(ADC(code, tables))
		direct := float64(vec.L2Squared(query, recon))
		if math.Abs(adc-direct) > 1e-2*math.Max(1, direct) {
			t.Fatalf("vector %d: ADC %.4f != decoded distance %.4f", i, adc, direct)
		}
	}
}

func TestDistanceTablesEntries(t *testing.T) {
	pq, _ := trainSmall(t, 3)
	query := randomData(1, 32, 5).Row(0)
	tables := pq.DistanceTables(query)
	if tables.M != 8 || tables.KStar != 256 {
		t.Fatalf("table shape %dx%d", tables.M, tables.KStar)
	}
	// Spot-check entries against the definition (Equation 2).
	for j := 0; j < pq.M; j++ {
		sub := query[j*pq.SubDim : (j+1)*pq.SubDim]
		for _, i := range []int{0, 17, 255} {
			want := vec.L2Squared(sub, pq.Codebooks[j].Row(i))
			if got := tables.Row(j)[i]; got != want {
				t.Fatalf("D_%d[%d] = %v, want %v", j, i, got, want)
			}
		}
	}
}

func TestTablesMinAndMaxSum(t *testing.T) {
	tbl := Tables{M: 2, KStar: 4, Data: []float32{5, 2, 7, 3, 9, 4, 6, 8}}
	if got := tbl.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := tbl.MaxSum(); got != 7+9 {
		t.Errorf("MaxSum = %v, want 16", got)
	}
}

// TestEncodePicksNearestCentroid: each sub-code must reference the
// closest centroid of its sub-quantizer.
func TestEncodePicksNearestCentroid(t *testing.T) {
	pq, data := trainSmall(t, 4)
	code := make([]uint8, pq.M)
	for i := 0; i < 20; i++ {
		x := data.Row(i)
		pq.Encode(x, code)
		for j := 0; j < pq.M; j++ {
			sub := x[j*pq.SubDim : (j+1)*pq.SubDim]
			want, _ := vec.ArgminL2(sub, pq.Codebooks[j].Data, pq.SubDim)
			if int(code[j]) != want {
				t.Fatalf("vector %d sub %d: code %d, nearest %d", i, j, code[j], want)
			}
		}
	}
}

func TestEncodeAllMatchesEncode(t *testing.T) {
	pq, data := trainSmall(t, 6)
	all := pq.EncodeAll(data)
	code := make([]uint8, pq.M)
	for _, i := range []int{0, 7, 1999} {
		pq.Encode(data.Row(i), code)
		for j := 0; j < pq.M; j++ {
			if all[i*pq.M+j] != code[j] {
				t.Fatalf("EncodeAll differs from Encode at vector %d", i)
			}
		}
	}
}

// TestQuantizationErrorImproves: quantization must be far better than
// representing everything by a single centroid, and a PQ with more
// centroids per sub-quantizer must not be worse.
func TestQuantizationErrorImproves(t *testing.T) {
	data := randomData(3000, 32, 7)
	pq8, err := Train(data, Config{M: 8, Bits: 8}, TrainOptions{MaxIter: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pq4, err := Train(data, Config{M: 8, Bits: 4}, TrainOptions{MaxIter: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e8 := pq8.QuantizationError(data)
	e4 := pq4.QuantizationError(data)
	if e8 >= e4 {
		t.Errorf("256-centroid error %.2f not below 16-centroid error %.2f", e8, e4)
	}
}

// TestOptimizeAssignmentPreservesGeometry: the permutation must be a
// bijection and the permuted quantizer must encode/decode identically to
// the original up to index renaming.
func TestOptimizeAssignmentPreservesGeometry(t *testing.T) {
	pq, data := trainSmall(t, 8)
	// Snapshot decoded vectors before permutation.
	codesBefore := pq.EncodeAll(data)
	reconBefore := make([]float32, pq.Dim)

	perms, err := pq.OptimizeAssignment(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(perms) != pq.M {
		t.Fatalf("%d permutations for %d sub-quantizers", len(perms), pq.M)
	}
	for j, perm := range perms {
		seen := make([]bool, pq.KStar())
		for _, v := range perm {
			if v < 0 || v >= pq.KStar() || seen[v] {
				t.Fatalf("sub-quantizer %d: invalid permutation", j)
			}
			seen[v] = true
		}
	}
	// Translating old codes must yield the same decoded vectors.
	pqNew := pq
	codesAfter := append([]uint8(nil), codesBefore...)
	pqNew.TranslateCodes(codesAfter, perms)
	reconAfter := make([]float32, pq.Dim)
	for i := 0; i < 100; i++ {
		// Decode through a stale copy is impossible (codebooks mutated in
		// place), so compare decoded translated codes against re-encoding.
		pqNew.Decode(codesAfter[i*pq.M:(i+1)*pq.M], reconAfter)
		code := make([]uint8, pq.M)
		pqNew.Encode(data.Row(i), code)
		pqNew.Decode(code, reconBefore)
		for d := range reconAfter {
			if reconAfter[d] != reconBefore[d] {
				t.Fatalf("vector %d decodes differently after translation", i)
			}
		}
	}
}

// TestOptimizeAssignmentPortionsAreClusters: after the optimized
// assignment, the 16 centroids of one portion must be the members of one
// same-size cluster, i.e. closer to their portion-mates than a random
// assignment would be (§4.3, Figure 11).
func TestOptimizeAssignmentPortionsAreClusters(t *testing.T) {
	pq, _ := trainSmall(t, 12)
	intra := func() float64 {
		tot, cnt := 0.0, 0
		for j := 0; j < pq.M; j++ {
			cb := pq.Codebooks[j]
			for h := 0; h < 16; h++ {
				for a := 0; a < 16; a++ {
					for b := a + 1; b < 16; b++ {
						tot += float64(vec.L2Squared(cb.Row(h*16+a), cb.Row(h*16+b)))
						cnt++
					}
				}
			}
		}
		return tot / float64(cnt)
	}
	before := intra()
	if _, err := pq.OptimizeAssignment(13); err != nil {
		t.Fatal(err)
	}
	after := intra()
	if after >= before {
		t.Errorf("intra-portion spread did not improve: %.1f -> %.1f", before, after)
	}
}

func TestOptimizeAssignmentRejectsSmallKStar(t *testing.T) {
	data := randomData(200, 16, 3)
	pq, err := Train(data, Config{M: 4, Bits: 3}, TrainOptions{MaxIter: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.OptimizeAssignment(1); err == nil {
		t.Error("k*=8 (not divisible into 16 portions) accepted")
	}
}

func TestEncodePanics(t *testing.T) {
	pq, _ := trainSmall(t, 14)
	for name, fn := range map[string]func(){
		"short vector": func() { pq.Encode(make([]float32, 3), make([]uint8, 8)) },
		"short code":   func() { pq.Encode(make([]float32, 32), make([]uint8, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
