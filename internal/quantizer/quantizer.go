// Package quantizer implements vector quantization and product
// quantization (paper §2.1), Asymmetric Distance Computation through
// per-query distance tables (paper §2.2, Equations 1-3), and the
// optimized assignment of sub-quantizer centroid indexes that PQ Fast
// Scan layers on top (paper §4.3).
package quantizer

import (
	"fmt"
	"math"

	"pqfastscan/internal/kmeans"
	"pqfastscan/internal/vec"
)

// Config selects a product quantizer configuration PQ m×b with m
// sub-quantizers of 2^b centroids each. Any configuration with m·b = 64
// yields 2^64 centroids total; the paper studies PQ 16×4, PQ 8×8 and
// PQ 4×16 (its Table 1) and adopts PQ 8×8 as "the best performance
// tradeoff, and ... the most commonly used configuration".
type Config struct {
	M    int // number of sub-quantizers
	Bits int // bits per sub-quantizer index, k* = 2^Bits
}

// PQ8x8 is the paper's primary configuration.
var PQ8x8 = Config{M: 8, Bits: 8}

// PQ16x4 and PQ4x16 are the alternative 64-bit configurations of Table 1.
var (
	PQ16x4 = Config{M: 16, Bits: 4}
	PQ4x16 = Config{M: 4, Bits: 16}
)

// KStar returns the number of centroids per sub-quantizer.
func (c Config) KStar() int { return 1 << c.Bits }

// CodeBits returns the total code size in bits (m · b).
func (c Config) CodeBits() int { return c.M * c.Bits }

// TableBytes returns the memory footprint of the m distance tables for
// this configuration: m × k* × sizeof(float32). This is the quantity the
// paper compares against cache-level capacities in Table 1.
func (c Config) TableBytes() int { return c.M * c.KStar() * 4 }

// String implements fmt.Stringer with the paper's PQ m×log2(k*) notation.
func (c Config) String() string { return fmt.Sprintf("PQ %dx%d", c.M, c.Bits) }

// ProductQuantizer is a trained product quantizer q_p: it splits a
// d-dimensional vector into M sub-vectors of d/M dimensions and encodes
// each with its own codebook C_j of k* centroids.
type ProductQuantizer struct {
	Config
	Dim       int          // input dimensionality d
	SubDim    int          // sub-vector dimensionality d* = d/M
	Codebooks []vec.Matrix // M codebooks, each k* x SubDim
}

// TrainOptions controls product quantizer learning.
type TrainOptions struct {
	MaxIter int
	Seed    uint64
}

// Train learns a product quantizer for cfg on the rows of data. The input
// dimensionality must be a multiple of cfg.M ("d is a multiple of m",
// §2.1) and the training set must contain at least k* vectors.
func Train(data vec.Matrix, cfg Config, opt TrainOptions) (*ProductQuantizer, error) {
	dim := data.Dim
	if cfg.M <= 0 || cfg.Bits <= 0 {
		return nil, fmt.Errorf("quantizer: invalid config %+v", cfg)
	}
	if dim%cfg.M != 0 {
		return nil, fmt.Errorf("quantizer: dimensionality %d not a multiple of m=%d", dim, cfg.M)
	}
	pq := &ProductQuantizer{
		Config:    cfg,
		Dim:       dim,
		SubDim:    dim / cfg.M,
		Codebooks: make([]vec.Matrix, cfg.M),
	}
	for j := 0; j < cfg.M; j++ {
		sub := data.SubColumns(j*pq.SubDim, (j+1)*pq.SubDim)
		res, err := kmeans.Train(sub, kmeans.Config{
			K:       cfg.KStar(),
			MaxIter: opt.MaxIter,
			Seed:    opt.Seed + uint64(j)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return nil, fmt.Errorf("quantizer: sub-quantizer %d: %w", j, err)
		}
		pq.Codebooks[j] = res.Centroids
	}
	return pq, nil
}

// Encode writes pqcode(x) into code, which must have length M. Each entry
// is the index of the closest centroid of the corresponding sub-quantizer.
// For configurations with Bits > 8 the index is truncated storage-wise by
// the caller; this package keeps one int16-safe byte pair only for
// Bits <= 8 and therefore restricts Encode to Bits <= 8 configurations
// (the scan kernels all operate on PQ 8×8; PQ 16×4 and PQ 4×16 appear only
// in the Table 1 capacity analysis).
func (pq *ProductQuantizer) Encode(x []float32, code []uint8) {
	if len(x) != pq.Dim {
		panic("quantizer: dimensionality mismatch")
	}
	if len(code) != pq.M {
		panic("quantizer: code length mismatch")
	}
	if pq.Bits > 8 {
		panic("quantizer: Encode supports at most 8 bits per index")
	}
	for j := 0; j < pq.M; j++ {
		sub := x[j*pq.SubDim : (j+1)*pq.SubDim]
		idx, _ := vec.ArgminL2(sub, pq.Codebooks[j].Data, pq.SubDim)
		code[j] = uint8(idx)
	}
}

// EncodeAll encodes every row of data, returning a dense n x M code array.
func (pq *ProductQuantizer) EncodeAll(data vec.Matrix) []uint8 {
	n := data.Rows()
	codes := make([]uint8, n*pq.M)
	for i := 0; i < n; i++ {
		pq.Encode(data.Row(i), codes[i*pq.M:(i+1)*pq.M])
	}
	return codes
}

// Decode reconstructs the centroid concatenation q_p(x) for code into dst
// (length Dim).
func (pq *ProductQuantizer) Decode(code []uint8, dst []float32) {
	if len(code) != pq.M || len(dst) != pq.Dim {
		panic("quantizer: decode size mismatch")
	}
	for j := 0; j < pq.M; j++ {
		copy(dst[j*pq.SubDim:(j+1)*pq.SubDim], pq.Codebooks[j].Row(int(code[j])))
	}
}

// Tables holds the m per-query distance tables D_j of Equation 2: entry
// (j, i) is the squared distance between the j-th sub-vector of the query
// and centroid i of sub-quantizer j. The backing array is flat so a table
// row is one contiguous cache-friendly block, as in the paper's Figure 2.
type Tables struct {
	M, KStar int
	Data     []float32 // M * KStar entries, row j at [j*KStar, (j+1)*KStar)
}

// Row returns distance table D_j.
func (t Tables) Row(j int) []float32 {
	return t.Data[j*t.KStar : (j+1)*t.KStar]
}

// Min returns the smallest entry across all tables, the paper's qmin
// bound ("We set qmin to the minimum value across all distance tables",
// §4.4).
func (t Tables) Min() float32 {
	m := float32(math.Inf(1))
	for _, v := range t.Data {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxSum returns the sum over tables of each table's maximum, the largest
// representable ADC distance (the loose qmax candidate the paper rejects
// in §4.4).
func (t Tables) MaxSum() float32 {
	var sum float32
	for j := 0; j < t.M; j++ {
		row := t.Row(j)
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum += m
	}
	return sum
}

// DistanceTables computes the m distance tables for query (Equation 2).
func (pq *ProductQuantizer) DistanceTables(query []float32) Tables {
	if len(query) != pq.Dim {
		panic("quantizer: dimensionality mismatch")
	}
	t := Tables{M: pq.M, KStar: pq.KStar(), Data: make([]float32, pq.M*pq.KStar())}
	for j := 0; j < pq.M; j++ {
		sub := query[j*pq.SubDim : (j+1)*pq.SubDim]
		row := t.Row(j)
		cb := pq.Codebooks[j]
		for i := 0; i < pq.KStar(); i++ {
			row[i] = vec.L2Squared(sub, cb.Row(i))
		}
	}
	return t
}

// ADC computes the asymmetric distance approximation of Equation 3:
// d~(p, y) = Σ_j D_j[p[j]].
func ADC(code []uint8, t Tables) float32 {
	var d float32
	for j := 0; j < t.M; j++ {
		d += t.Data[j*t.KStar+int(code[j])]
	}
	return d
}

// OptimizeAssignment computes the paper's §4.3 optimized assignment of
// centroid indexes for every sub-quantizer: the k* centroids of each
// codebook are clustered into 16 same-size clusters of k*/16 members
// (same-size k-means, reference [24]), and members of one cluster receive
// consecutive indexes so each 16-index distance-table portion covers
// nearby centroids.
//
// It returns, per sub-quantizer, the permutation oldToNew mapping original
// centroid indexes to their new positions, and mutates the codebooks in
// place. Codes produced by the pre-permutation quantizer can be migrated
// with TranslateCodes; newly encoded vectors use the new assignment
// automatically.
func (pq *ProductQuantizer) OptimizeAssignment(seed uint64) ([][]int, error) {
	if pq.KStar()%16 != 0 {
		return nil, fmt.Errorf("quantizer: k*=%d not divisible into 16 portions", pq.KStar())
	}
	perms := make([][]int, pq.M)
	for j := 0; j < pq.M; j++ {
		clusters, err := kmeans.SameSize(pq.Codebooks[j], 16, seed+uint64(j))
		if err != nil {
			return nil, fmt.Errorf("quantizer: sub-quantizer %d: %w", j, err)
		}
		oldToNew := make([]int, pq.KStar())
		next := make([]int, 16)
		portion := pq.KStar() / 16
		for c := 1; c < 16; c++ {
			next[c] = c * portion
		}
		for old, cl := range clusters {
			oldToNew[old] = next[cl]
			next[cl]++
		}
		// Rebuild the codebook in the new order.
		newCB := vec.NewMatrix(pq.KStar(), pq.SubDim)
		for old := 0; old < pq.KStar(); old++ {
			copy(newCB.Row(oldToNew[old]), pq.Codebooks[j].Row(old))
		}
		pq.Codebooks[j] = newCB
		perms[j] = oldToNew
	}
	return perms, nil
}

// TranslateCodes rewrites codes encoded before OptimizeAssignment so they
// reference the permuted codebooks. codes is a dense n x M array.
func (pq *ProductQuantizer) TranslateCodes(codes []uint8, perms [][]int) {
	if len(perms) != pq.M {
		panic("quantizer: permutation count mismatch")
	}
	for i := 0; i < len(codes); i += pq.M {
		for j := 0; j < pq.M; j++ {
			codes[i+j] = uint8(perms[j][codes[i+j]])
		}
	}
}

// QuantizationError returns the mean squared reconstruction error of pq
// over the rows of data, a standard quality proxy used in tests.
func (pq *ProductQuantizer) QuantizationError(data vec.Matrix) float64 {
	n := data.Rows()
	if n == 0 {
		return 0
	}
	code := make([]uint8, pq.M)
	recon := make([]float32, pq.Dim)
	total := 0.0
	for i := 0; i < n; i++ {
		pq.Encode(data.Row(i), code)
		pq.Decode(code, recon)
		total += float64(vec.L2Squared(data.Row(i), recon))
	}
	return total / float64(n)
}
