package pqfastscan_test

import (
	"context"
	"strings"
	"testing"

	"pqfastscan"
)

// TestSwap pins the façade's hot-swap semantics: the handle serves the
// new snapshot after Swap, the returned handle serves the old one, and
// an incompatible replacement is refused with the serving index intact.
func TestSwap(t *testing.T) {
	serving, _, queries := sharedAPIIndex(t)
	liveA := serving.Live()

	gen := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 99})
	opt := pqfastscan.DefaultBuildOptions()
	opt.Partitions = 4 // the shared fixture's; swaps require an equal cell count
	next, err := pqfastscan.Build(gen.Generate(1500), gen.Generate(1700), opt)
	if err != nil {
		t.Fatal(err)
	}

	old, err := serving.Swap(next)
	if err != nil {
		t.Fatal(err)
	}
	// Other tests share this fixture; restore the original snapshot.
	defer func() {
		if _, err := serving.Swap(old); err != nil {
			t.Fatal(err)
		}
	}()

	if serving.Live() != next.Live() || serving.Live() != 1700 {
		t.Fatalf("handle serves %d live vectors after swap, want 1700", serving.Live())
	}
	if old.Live() != liveA {
		t.Fatalf("returned handle serves %d live vectors, want old snapshot's %d", old.Live(), liveA)
	}
	res, err := serving.Search(context.Background(), queries.Row(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("post-swap search returned %d results", len(res.Results))
	}

	// Incompatible replacement: different dimensionality.
	gen64 := pqfastscan.NewSyntheticDataset(pqfastscan.DatasetConfig{Seed: 98, Dim: 64})
	other, err := pqfastscan.Build(gen64.Generate(1200), gen64.Generate(1200), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serving.Swap(other); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Fatalf("incompatible swap: got %v, want dimension error", err)
	}

	// Incompatible replacement: fewer partitions (a previously valid
	// nprobe would go out of range mid-stream).
	opt2 := opt
	opt2.Partitions = 2
	narrow, err := pqfastscan.Build(gen.Generate(1200), gen.Generate(1200), opt2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serving.Swap(narrow); err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("partition-count swap: got %v, want partitions error", err)
	}
	if serving.Live() != 1700 {
		t.Fatal("failed swap replaced the serving snapshot")
	}
	if _, err := serving.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
}
