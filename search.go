package pqfastscan

import (
	"context"
	"fmt"

	"pqfastscan/internal/index"
	"pqfastscan/internal/plan"
)

// Searcher is the query surface of the package: one context-aware entry
// point for single-query execution and one for batches. *Index implements
// it directly; Index.With returns derived Searchers with options (e.g. a
// multi-probe or instrumented view) pre-applied, so single-query,
// multi-probe and batch execution all flow through the same interface.
type Searcher interface {
	// Search returns the k approximate nearest neighbors of query.
	Search(ctx context.Context, query []float32, k int, opts ...SearchOption) (*SearchResult, error)
	// SearchBatch answers every query row concurrently (one goroutine
	// per core, the paper's deployment model) and returns per-query
	// results in order.
	SearchBatch(ctx context.Context, queries Matrix, k int, opts ...SearchOption) ([]*SearchResult, error)
}

// SearchOption customizes one search; the zero configuration is the
// default (PQ Fast Scan on the native engine, single-cell routing, no
// statistics).
type SearchOption func(*searchConfig)

type searchConfig struct {
	kernel    Kernel
	engine    Engine
	engineSet bool
	backend   Backend
	nprobe    int
	cells     []int
	parallel  bool
	stats     bool

	// Adaptive planning (WithAuto / WithTargetRecall). The *Set flags
	// record which knobs the caller pinned explicitly: the planner
	// fills only the open ones, so explicit options always win
	// (conflict semantics pinned by TestAutoConflictSemantics).
	auto        bool
	recall      float64
	recallSet   bool
	nprobeSet   bool
	kernelSet   bool
	backendSet  bool
	parallelSet bool
}

// WithKernel selects the scan kernel. All kernels return identical
// results; they differ only in cost.
func WithKernel(k Kernel) SearchOption {
	return func(c *searchConfig) { c.kernel = k; c.kernelSet = true }
}

// WithEngine selects the execution engine. EngineNative (the default) is
// the wall-clock-fast SWAR implementation; EngineModel is the bit-exact
// instruction-counting reference. Both return identical result sets —
// see DESIGN.md §9, "Two engines, one algorithm".
func WithEngine(e Engine) SearchOption {
	return func(c *searchConfig) { c.engine = e; c.engineSet = true }
}

// WithBackend pins the native engine's block kernels to one backend —
// the hand-written assembly kernels (BackendAVX2 on amd64, BackendNEON
// on arm64) or the portable BackendSWAR fallback — instead of the
// startup feature detection (BackendAuto, the default; see
// ActiveBackend). Every backend returns bit-identical results and
// statistics; only wall-clock speed differs, so this option exists for
// benchmarking, regression hunting and pinning deployments. Requesting
// a backend the machine cannot run is rejected by the search call, as
// is combining it with the model engine (WithStats or an explicit
// WithEngine(EngineModel)) — the model counts instructions rather than
// executing a backend's.
func WithBackend(b Backend) SearchOption {
	return func(c *searchConfig) { c.backend = b; c.backendSet = true }
}

// WithNProbe scans the nprobe closest partitions and merges their
// results, trading latency for recall. nprobe must be in
// [1, Partitions]; any other value (including 0) is rejected by the
// search call.
func WithNProbe(nprobe int) SearchOption {
	return func(c *searchConfig) { c.nprobe = nprobe; c.nprobeSet = true }
}

// WithCells scans exactly the listed IVF cells, in order, instead of
// routing the query through the coarse quantizer. It is the shard-side
// half of scatter-gather cluster serving (internal/cluster, cmd/pqrouter):
// the router ranks cells against the coarse centroids once and tells
// each shard which of its cells to scan — and it is equally useful for
// tests and tools pinning a scan to known cells. Results are identical
// to a multi-probe search visiting the same set. Cells must be in
// range and free of duplicates, and combining WithCells with
// WithNProbe(>1) is rejected: the options answer the same question two
// different ways.
func WithCells(cells ...int) SearchOption {
	return func(c *searchConfig) { c.cells = cells }
}

// WithParallel scans the probed partitions of a single query
// concurrently (one goroutine per cell, capped at GOMAXPROCS) instead of
// sequentially. Results and statistics are identical; only wall-clock
// latency changes. It is opt-in because the paper measures single-core
// scans, and it only engages when more than one partition is probed.
// SearchBatch ignores it: the batch already runs one worker per core,
// and nesting per-query parallelism would only oversubscribe.
//
// Combining WithParallel with WithStats is fully supported: each
// partition scan keeps its own counters and they are merged in
// deterministic cell-visit order after the workers join, so the
// attached Stats (operation counts included) are identical to the
// sequential multi-probe scan's. A test pins this equivalence.
func WithParallel() SearchOption {
	return func(c *searchConfig) { c.parallel = true; c.parallelSet = true }
}

// WithAuto lets the adaptive planner (internal/plan, DESIGN.md §16)
// choose nprobe, kernel, backend and sequential-vs-parallel probing per
// query from live signals — partition sizes and dead ratios along the
// cell ranking, paged-vs-resident status, and the online per-class
// ns/code cost observations seeded by the internal/perf model. Without
// a recall target it optimizes for latency; with no observations yet it
// degrades deterministically to the documented defaults (PQ Fast Scan,
// automatic backend, single probe, sequential).
//
// The planner only selects among bit-identical configurations, and its
// probe set is always a prefix of the WithNProbe ranking — a planned
// query returns exactly what the fixed-option query built from its
// decision would. Explicit options always override it: combining
// WithAuto with WithNProbe, WithKernel, WithBackend or WithParallel
// pins that knob and plans only the rest; WithCells pins routing
// entirely; WithStats (model engine) restricts planning to nprobe.
func WithAuto() SearchOption {
	return func(c *searchConfig) { c.auto = true }
}

// WithTargetRecall asks the planner for the cheapest configuration
// expected to reach recall r in (0, 1]: it probes the closest cells
// until they cover at least fraction r of the live database mass (the
// structural surrogate for routing recall — see DESIGN.md §16), then
// picks kernel, backend and parallelism as WithAuto does. It implies
// WithAuto; any other r is rejected by the search call.
func WithTargetRecall(r float64) SearchOption {
	return func(c *searchConfig) { c.auto = true; c.recall = r; c.recallSet = true }
}

// WithStats attaches the scan statistics (pruning power, operation
// counts) to the SearchResult, for instrumentation and experiments.
// Statistics imply the model engine — only it counts instructions — so
// WithStats pins the search to EngineModel; combining it with an
// explicit WithEngine(EngineNative) is rejected. WithParallel composes
// cleanly: per-partition counters merge deterministically (see
// WithParallel), never racing and never silently disabling collection.
func WithStats() SearchOption {
	return func(c *searchConfig) { c.stats = true }
}

// SearchResult is one query's rich answer.
type SearchResult struct {
	// Results are the k nearest neighbors, ascending by distance.
	Results []Result
	// Stats describes the scan's dynamic behaviour; nil unless the
	// search ran WithStats.
	Stats *Stats
	// Partitions lists the IVF cells probed, in visit order.
	Partitions []int
}

// Search returns the k approximate nearest neighbors of query. The
// context is honored between partition scans, so cancellation and
// deadlines (context.WithDeadline) cut multi-probe queries short instead
// of letting them run to completion. Options select the kernel, the
// number of cells probed, and statistics collection.
func (ix *Index) Search(ctx context.Context, query []float32, k int, opts ...SearchOption) (*SearchResult, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg = ix.expandAuto(cfg, query)
	resp, err := ix.load().Query(ctx, index.Request{
		Query: query, K: k, Kernel: cfg.kernel, Engine: cfg.engine,
		Backend: cfg.backend, NProbe: cfg.nprobe, Cells: cfg.cells,
		Parallel: cfg.parallel,
	})
	if err != nil {
		return nil, err
	}
	return toSearchResult(resp, cfg.stats), nil
}

// SearchBatch answers every row of queries concurrently and returns
// per-query results in query order. Cancelling ctx stops workers between
// partition scans.
func (ix *Index) SearchBatch(ctx context.Context, queries Matrix, k int, opts ...SearchOption) ([]*SearchResult, error) {
	cfg, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	// One Request serves the whole batch, so the planner sees the first
	// row: batches are assumed homogeneous (the server coalesces by
	// plan class). An empty batch has nothing to plan.
	if queries.Rows() > 0 {
		cfg = ix.expandAuto(cfg, queries.Row(0))
	}
	resps, err := ix.load().QueryBatch(ctx, queries, index.Request{
		K: k, Kernel: cfg.kernel, Engine: cfg.engine,
		Backend: cfg.backend, NProbe: cfg.nprobe, Cells: cfg.cells,
		Parallel: cfg.parallel,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*SearchResult, len(resps))
	for i, r := range resps {
		out[i] = toSearchResult(r, cfg.stats)
	}
	return out, nil
}

// resolveOptions applies opts over the default configuration (PQ Fast
// Scan on the native engine, single-cell routing) and rejects values no
// search can honor. WithStats pins the search to the model engine, the
// only one that counts instructions.
func resolveOptions(opts []SearchOption) (searchConfig, error) {
	cfg := searchConfig{kernel: KernelFastScan, engine: EngineNative, nprobe: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.nprobe < 1 {
		return cfg, fmt.Errorf("pqfastscan: nprobe must be positive, got %d", cfg.nprobe)
	}
	if cfg.stats {
		if cfg.engineSet && cfg.engine == EngineNative {
			return cfg, fmt.Errorf("pqfastscan: WithStats requires the model engine (only it counts instructions); use WithEngine(EngineModel) or drop one of the options")
		}
		cfg.engine = EngineModel
	}
	if cfg.backend != BackendAuto && cfg.engine == EngineModel {
		return cfg, fmt.Errorf("pqfastscan: WithBackend selects native block kernels; the model engine (WithStats / WithEngine(EngineModel)) has none")
	}
	if cfg.recallSet && (cfg.recall <= 0 || cfg.recall > 1) {
		return cfg, fmt.Errorf("pqfastscan: target recall must be in (0, 1], got %g", cfg.recall)
	}
	return cfg, nil
}

// expandAuto runs the adaptive planner over the knobs the caller left
// open and writes its decision into the configuration — the point where
// WithAuto/WithTargetRecall become the concrete options an explicit
// query would carry. Called after resolveOptions, so the engine and
// conflict checks have already settled.
func (ix *Index) expandAuto(cfg searchConfig, query []float32) searchConfig {
	if !cfg.auto {
		return cfg
	}
	native := cfg.engine == EngineNative
	fastKernel := cfg.kernel == KernelFastScan || cfg.kernel == KernelFastScan256
	req := plan.Request{
		Query:        query,
		Recall:       cfg.recall,
		PlanNProbe:   !cfg.nprobeSet && len(cfg.cells) == 0,
		PlanKernel:   !cfg.kernelSet && native,
		PlanBackend:  !cfg.backendSet && native && (!cfg.kernelSet || fastKernel),
		PlanParallel: !cfg.parallelSet,
		FixedNProbe:  cfg.nprobe,
		Cells:        cfg.cells,
		FastKernel:   fastKernel,
	}
	d := plan.Decide(ix.load(), req)
	if req.PlanNProbe {
		cfg.nprobe = d.NProbe
	}
	if req.PlanKernel {
		cfg.kernel = d.Kernel
	}
	if req.PlanBackend {
		cfg.backend = d.Backend
	}
	if req.PlanParallel && d.Parallel {
		cfg.parallel = true
	}
	return cfg
}

func toSearchResult(r *index.Response, withStats bool) *SearchResult {
	sr := &SearchResult{Results: r.Results, Partitions: r.Partitions}
	if withStats {
		stats := r.Stats
		sr.Stats = &stats
	}
	return sr
}

// With returns a Searcher that applies opts before each call's own
// options — a reusable preconfigured view of the index. For example,
// idx.With(WithNProbe(4)) is a multi-probe Searcher, and
// idx.With(WithKernel(KernelNaive), WithStats()) an instrumented
// baseline one.
func (ix *Index) With(opts ...SearchOption) Searcher {
	return &optionedSearcher{ix: ix, opts: opts}
}

type optionedSearcher struct {
	ix   *Index
	opts []SearchOption
}

func (s *optionedSearcher) Search(ctx context.Context, query []float32, k int, opts ...SearchOption) (*SearchResult, error) {
	return s.ix.Search(ctx, query, k, append(append([]SearchOption(nil), s.opts...), opts...)...)
}

func (s *optionedSearcher) SearchBatch(ctx context.Context, queries Matrix, k int, opts ...SearchOption) ([]*SearchResult, error) {
	return s.ix.SearchBatch(ctx, queries, k, append(append([]SearchOption(nil), s.opts...), opts...)...)
}

var _ Searcher = (*Index)(nil)
var _ Searcher = (*optionedSearcher)(nil)

// Add encodes one vector against the trained quantizers and appends it
// to its partition online, regrouping the affected Fast Scan group
// incrementally. It returns the assigned id. The index needs no rebuild:
// subsequent searches see the vector immediately, with results identical
// to an index rebuilt from scratch over the same vectors.
func (ix *Index) Add(vector []float32) (int64, error) {
	m := Matrix{Data: vector, Dim: len(vector)}
	ids, err := ix.addDurable(m)
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AddBatch indexes every row of vectors online and returns the assigned
// ids in row order.
func (ix *Index) AddBatch(vectors Matrix) ([]int64, error) {
	return ix.addDurable(vectors)
}

// ErrNotFound is returned by Delete when the id is not live in the
// index: never assigned, already deleted, or replaced with a snapshot
// swap. Test with errors.Is.
var ErrNotFound = index.ErrNotFound

// Delete removes the vector with the given id from future search
// results by publishing a copy-on-write tombstone epoch of its
// partition: in-flight searches keep the snapshot they loaded, later
// searches skip the id. The code stays in its partition block until the
// online compactor reclaims it (Compact, or the serving layer's
// background policy). It returns ErrNotFound when the id was never
// assigned or is no longer live.
func (ix *Index) Delete(id int64) error {
	return ix.deleteDurable(id)
}

// PartitionStat describes one IVF cell's occupancy: live and tombstoned
// row counts, the dead ratio compaction policies act on, and the epoch
// number of its currently published version.
type PartitionStat = index.PartitionStat

// PartitionStats returns per-partition live/dead/epoch counters from the
// current snapshot.
func (ix *Index) PartitionStats() []PartitionStat { return ix.load().PartitionStats() }

// CompactionResult reports one partition compaction: how many
// tombstoned rows were reclaimed and the epoch published.
type CompactionResult = index.CompactionResult

// Compact rebuilds, online, every partition whose dead ratio is at
// least minDeadRatio, removing tombstoned codes. Compaction runs off
// the serving path: searches never block, and results are identical
// before and after (deleted ids were already excluded). It returns the
// partitions actually compacted.
func (ix *Index) Compact(minDeadRatio float64) ([]CompactionResult, error) {
	return ix.load().Compact(minDeadRatio)
}

// CompactPartition compacts one partition unconditionally (no-op when it
// holds no tombstones).
func (ix *Index) CompactPartition(part int) (CompactionResult, error) {
	return ix.load().CompactPartition(part)
}

// Live returns the number of indexed vectors that have not been deleted.
func (ix *Index) Live() int { return ix.load().Live() }

// --- Deprecated pre-context API ----------------------------------------
//
// The seed exposed five hard-coded entry points. They remain as thin
// wrappers over the option-based path; an equivalence test pins their
// results to the new API's. SearchLegacy and SearchBatchLegacy carry the
// behavior of the seed's Search and SearchBatch, whose names now belong
// to the context-aware methods.

// SearchLegacy is the seed's Search: the k nearest neighbors by PQ Fast
// Scan, no context.
//
// Deprecated: use Search(ctx, query, k).
func (ix *Index) SearchLegacy(query []float32, k int) ([]Result, error) {
	return ix.SearchKernel(query, k, KernelFastScan)
}

// SearchKernel answers the query with an explicit kernel choice.
//
// Deprecated: use Search(ctx, query, k, WithKernel(kernel)).
func (ix *Index) SearchKernel(query []float32, k int, kernel Kernel) ([]Result, error) {
	res, err := ix.Search(context.Background(), query, k, WithKernel(kernel))
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// SearchMulti scans the nprobe closest partitions and merges results.
//
// Deprecated: use Search(ctx, query, k, WithNProbe(nprobe)).
func (ix *Index) SearchMulti(query []float32, k, nprobe int) ([]Result, error) {
	res, err := ix.Search(context.Background(), query, k, WithNProbe(nprobe))
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// SearchBatchLegacy is the seed's SearchBatch: concurrent per-query
// results with PQ Fast Scan, no context.
//
// Deprecated: use SearchBatch(ctx, queries, k).
func (ix *Index) SearchBatchLegacy(queries Matrix, k int) ([][]Result, error) {
	batch, err := ix.SearchBatch(context.Background(), queries, k)
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(batch))
	for i, r := range batch {
		out[i] = r.Results
	}
	return out, nil
}

// SearchWithStats is SearchKernel plus the scan statistics and the
// partition scanned.
//
// Deprecated: use Search(ctx, query, k, WithKernel(kernel), WithStats())
// and read Stats and Partitions off the SearchResult.
func (ix *Index) SearchWithStats(query []float32, k int, kernel Kernel) ([]Result, Stats, int, error) {
	res, err := ix.Search(context.Background(), query, k, WithKernel(kernel), WithStats())
	if err != nil {
		return nil, Stats{}, 0, err
	}
	return res.Results, *res.Stats, res.Partitions[0], nil
}
